// Tests for the defense module: water-heater physics, CHPr masking,
// battery levelling, obfuscation primitives, and differential privacy.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/stats.h"
#include "defense/battery.h"
#include "defense/chpr.h"
#include "defense/dp.h"
#include "defense/obfuscation.h"
#include "defense/water_heater.h"
#include "niom/detector.h"
#include "niom/evaluate.h"
#include "synth/home.h"

namespace pmiot::defense {
namespace {

// --- water heater ----------------------------------------------------------

TEST(Tank, HeatingRaisesTemperature) {
  WaterHeaterTank tank(TankOptions{}, 50.0);
  const double before = tank.temperature_c();
  tank.step(4.5, 0.0, 10.0);
  EXPECT_GT(tank.temperature_c(), before + 2.0);
}

TEST(Tank, DrawsLowerTemperature) {
  WaterHeaterTank tank(TankOptions{}, 55.0);
  tank.step(0.0, 40.0, 1.0);
  EXPECT_LT(tank.temperature_c(), 55.0);
  EXPECT_GT(tank.temperature_c(), TankOptions{}.inlet_c);
}

TEST(Tank, StandingLossesCoolSlowly) {
  WaterHeaterTank tank(TankOptions{}, 60.0);
  for (int m = 0; m < 600; ++m) tank.step(0.0, 0.0, 1.0);
  EXPECT_LT(tank.temperature_c(), 60.0);
  EXPECT_GT(tank.temperature_c(), 54.0);  // ~2 kWh/day standby loss
}

TEST(Tank, HeatClampedToElementRating) {
  TankOptions options;
  WaterHeaterTank a(options, 50.0), b(options, 50.0);
  a.step(options.element_kw, 0.0, 5.0);
  b.step(100.0, 0.0, 5.0);  // silently clamped
  EXPECT_NEAR(a.temperature_c(), b.temperature_c(), 1e-9);
}

TEST(Tank, FlagsComfortAndHeadroom) {
  TankOptions options;
  WaterHeaterTank cold(options, options.min_temp_c - 1.0);
  EXPECT_TRUE(cold.must_heat());
  WaterHeaterTank hot(options, options.max_temp_c + 0.5);
  EXPECT_FALSE(hot.can_heat());
}

TEST(Tank, EnergyPerDegreeMatchesPhysics) {
  // 189 L of water: ~0.22 kWh per Kelvin.
  WaterHeaterTank tank(TankOptions{}, 50.0);
  EXPECT_NEAR(tank.kwh_per_degree(), 0.2197, 0.001);
}

TEST(HotWaterDraws, OnlyWhenOccupied) {
  Rng rng(1);
  std::vector<int> vacant(2 * kMinutesPerDay, 0);
  const auto draws = simulate_hot_water_draws(vacant, rng);
  EXPECT_DOUBLE_EQ(stats::max(draws), 0.0);
}

TEST(HotWaterDraws, RealisticDailyVolume) {
  Rng rng(2);
  std::vector<int> home(7 * kMinutesPerDay, 1);
  const auto draws = simulate_hot_water_draws(home, rng);
  const double daily_liters = stats::sum(draws) / 7.0;
  EXPECT_GT(daily_liters, 40.0);
  EXPECT_LT(daily_liters, 250.0);
}

TEST(Thermostat, HoldsTemperatureBand) {
  Rng rng(3);
  std::vector<int> home(3 * kMinutesPerDay, 1);
  const auto draws = simulate_hot_water_draws(home, rng);
  TankOptions options;
  const auto power = thermostat_schedule(options, draws);
  ASSERT_EQ(power.size(), draws.size());
  // Replay to check the temperature band.
  WaterHeaterTank tank(options, options.setpoint_c);
  for (std::size_t t = 0; t < power.size(); ++t) {
    tank.step(power[t], draws[t], 1.0);
    EXPECT_GT(tank.temperature_c(), options.min_temp_c - 8.0);
    EXPECT_LT(tank.temperature_c(), options.setpoint_c + 2.0);
  }
}

// --- CHPr -------------------------------------------------------------------

struct ChprScene {
  synth::HomeTrace home;
  std::vector<double> draws;
  ChprResult result;
};

ChprScene run_chpr(std::uint64_t seed = 11, int days = 7) {
  auto cfg = synth::home_b();
  std::vector<synth::ApplianceSpec> apps;
  for (const auto& a : cfg.appliances) {
    if (a.name != "water_heater") apps.push_back(a);
  }
  cfg.appliances = apps;
  Rng rng(seed);
  ChprScene scene{synth::simulate_home(cfg, CivilDate{2017, 6, 5}, days, rng),
                  {},
                  ChprResult{}};
  scene.draws = simulate_hot_water_draws(scene.home.occupancy, rng);
  scene.result =
      apply_chpr(scene.home.aggregate, scene.draws, ChprOptions{}, rng);
  return scene;
}

TEST(Chpr, CutsOccupancyMccByHalfOrMore) {
  const auto scene = run_chpr();
  // Raw baseline: home + conventional heater.
  const auto conventional =
      thermostat_schedule(TankOptions{}, scene.draws);
  auto raw = scene.home.aggregate;
  for (std::size_t t = 0; t < raw.size(); ++t) raw[t] += conventional[t];

  niom::ThresholdNiom attack;
  const auto raw_report = niom::evaluate(attack, raw, scene.home.occupancy,
                                         niom::waking_hours());
  const auto chpr_report = niom::evaluate(
      attack, scene.result.masked, scene.home.occupancy, niom::waking_hours());
  EXPECT_GT(raw_report.mcc, 0.3);
  EXPECT_LT(chpr_report.mcc, raw_report.mcc * 0.5);
}

TEST(Chpr, NoComfortViolations) {
  const auto scene = run_chpr();
  EXPECT_EQ(scene.result.comfort_violation_minutes, 0);
}

TEST(Chpr, TankStaysInsideBand) {
  const auto scene = run_chpr();
  const TankOptions options;
  for (double temp : scene.result.tank_temp_c) {
    EXPECT_GT(temp, options.min_temp_c - 6.0);
    EXPECT_LT(temp, options.max_temp_c + 1.0);
  }
}

TEST(Chpr, HeaterPowerIsElementBounded) {
  const auto scene = run_chpr();
  for (double kw : scene.result.heater_kw) {
    EXPECT_GE(kw, 0.0);
    EXPECT_LE(kw, TankOptions{}.element_kw);
  }
}

TEST(Chpr, MaskedEqualsHomePlusHeater) {
  const auto scene = run_chpr();
  for (std::size_t t = 0; t < scene.result.masked.size(); ++t) {
    EXPECT_NEAR(scene.result.masked[t],
                scene.home.aggregate[t] + scene.result.heater_kw[t], 1e-9);
  }
}

TEST(Chpr, ValidatesInput) {
  Rng rng(1);
  ts::TimeSeries hourly(ts::TraceMeta{CivilDate{2017, 6, 1}, 0, 3600},
                        std::vector<double>(48, 0.5));
  std::vector<double> draws(48, 0.0);
  EXPECT_THROW(apply_chpr(hourly, draws, ChprOptions{}, rng),
               InvalidArgument);
}

// --- battery -----------------------------------------------------------------

TEST(Battery, FlattensVariance) {
  Rng rng(21);
  const auto home =
      synth::simulate_home(synth::home_a(), CivilDate{2017, 6, 5}, 5, rng);
  const auto result = apply_battery(home.aggregate, BatteryOptions{}, 1.0);
  EXPECT_LT(stats::variance(result.metered.values()),
            stats::variance(home.aggregate.values()) * 0.35);
}

TEST(Battery, IntensityZeroIsIdentity) {
  Rng rng(22);
  const auto home =
      synth::simulate_home(synth::home_a(), CivilDate{2017, 6, 5}, 2, rng);
  const auto result = apply_battery(home.aggregate, BatteryOptions{}, 0.0);
  for (std::size_t t = 0; t < result.metered.size(); ++t) {
    EXPECT_DOUBLE_EQ(result.metered[t], home.aggregate[t]);
  }
  EXPECT_DOUBLE_EQ(result.losses_kwh, 0.0);
}

TEST(Battery, SocStaysWithinCapacity) {
  Rng rng(23);
  const auto home =
      synth::simulate_home(synth::home_b(), CivilDate{2017, 6, 5}, 5, rng);
  BatteryOptions options;
  const auto result = apply_battery(home.aggregate, options, 1.0);
  for (double soc : result.soc_kwh) {
    EXPECT_GE(soc, -1e-9);
    EXPECT_LE(soc, options.capacity_kwh + 1e-9);
  }
}

TEST(Battery, LossesGrowWithActivity) {
  Rng rng(24);
  const auto home =
      synth::simulate_home(synth::home_b(), CivilDate{2017, 6, 5}, 5, rng);
  const auto half = apply_battery(home.aggregate, BatteryOptions{}, 0.5);
  const auto full = apply_battery(home.aggregate, BatteryOptions{}, 1.0);
  EXPECT_GT(full.losses_kwh, half.losses_kwh);
  EXPECT_GT(full.losses_kwh, 0.0);
}

TEST(Battery, MeterNeverNegative) {
  Rng rng(25);
  const auto home =
      synth::simulate_home(synth::home_a(), CivilDate{2017, 6, 5}, 3, rng);
  const auto result = apply_battery(home.aggregate, BatteryOptions{}, 1.0);
  for (std::size_t t = 0; t < result.metered.size(); ++t) {
    EXPECT_GE(result.metered[t], 0.0);
  }
}

// Oracle for apply_battery that recomputes the daily mean inside the sample
// loop — the O(n · per_day) formulation the production code hoisted. The
// defense must produce identical output.
ts::TimeSeries battery_oracle(const ts::TimeSeries& load,
                              const BatteryOptions& options,
                              double intensity) {
  const auto per_day = load.samples_per_day();
  const double dt_hours = load.meta().interval_seconds / 3600.0;
  const double one_way_eff = std::sqrt(options.round_trip_efficiency);
  std::vector<double> metered(load.size(), 0.0);
  double soc = options.initial_soc * options.capacity_kwh;
  for (std::size_t t = 0; t < load.size(); ++t) {
    const std::size_t day_first = (t / per_day) * per_day;
    const std::size_t day_len = std::min(per_day, load.size() - day_first);
    const double target =
        stats::mean(load.values().subspan(day_first, day_len));
    const double desired_delta = intensity * (target - load[t]);
    double battery_kw = std::clamp(desired_delta, -options.max_power_kw,
                                   options.max_power_kw);
    if (battery_kw > 0.0) {
      const double room_kwh = options.capacity_kwh - soc;
      battery_kw = std::min(battery_kw, room_kwh / (one_way_eff * dt_hours));
      soc += battery_kw * one_way_eff * dt_hours;
    } else if (battery_kw < 0.0) {
      const double avail_kw = soc * one_way_eff / dt_hours;
      battery_kw = std::max(battery_kw, -avail_kw);
      soc += battery_kw / one_way_eff * dt_hours;
    }
    soc = std::clamp(soc, 0.0, options.capacity_kwh);
    metered[t] = std::max(0.0, load[t] + battery_kw);
  }
  return ts::TimeSeries(load.meta(), std::move(metered));
}

TEST(Battery, HoistedDailyMeanMatchesPerSampleRecompute) {
  Rng rng(28);
  const auto home =
      synth::simulate_home(synth::home_b(), CivilDate{2017, 6, 5}, 3, rng);
  // A trailing partial day makes the last day_len < per_day.
  const auto load = home.aggregate.slice(0, home.aggregate.size() - 100);
  for (double intensity : {0.4, 1.0}) {
    const auto result = apply_battery(load, BatteryOptions{}, intensity);
    const auto expected = battery_oracle(load, BatteryOptions{}, intensity);
    ASSERT_EQ(result.metered.size(), expected.size());
    for (std::size_t t = 0; t < expected.size(); ++t) {
      EXPECT_DOUBLE_EQ(result.metered[t], expected[t]) << "t=" << t;
    }
  }
}

TEST(Nill, SteadyTargetTracksEachDaysMean) {
  // Two days with very different means; with a battery large enough never
  // to hit a recovery threshold, the meter must sit at each day's own mean.
  ts::TraceMeta meta;
  meta.interval_seconds = 60;
  std::vector<double> values;
  for (int t = 0; t < 1440; ++t) values.push_back(t % 2 == 0 ? 0.2 : 0.6);
  for (int t = 0; t < 1440; ++t) values.push_back(t % 2 == 0 ? 0.6 : 1.4);
  const ts::TimeSeries load(meta, values);

  NillOptions options;
  options.battery.capacity_kwh = 100.0;
  options.battery.max_power_kw = 10.0;
  options.battery.round_trip_efficiency = 1.0;
  const auto result = apply_nill(load, options);
  for (std::size_t t = 0; t < result.metered.size(); ++t) {
    EXPECT_NEAR(result.metered[t], t < 1440 ? 0.4 : 1.0, 1e-9) << "t=" << t;
  }
}

TEST(Nill, HoldsMeterAtSteadyTargets) {
  Rng rng(26);
  const auto home =
      synth::simulate_home(synth::home_a(), CivilDate{2017, 6, 5}, 5, rng);
  const auto result = apply_nill(home.aggregate, NillOptions{});
  // Most samples sit exactly on one of the (few) targets: the metered
  // signal takes only a handful of distinct values apart from leaks.
  const double leak_fraction =
      static_cast<double>(result.leak_samples) /
      static_cast<double>(result.metered.size());
  EXPECT_LT(leak_fraction, 0.2);
  EXPECT_LT(stats::variance(result.metered.values()),
            stats::variance(home.aggregate.values()) * 0.3);
}

TEST(Nill, RecoveryStatesActivate) {
  Rng rng(27);
  const auto home =
      synth::simulate_home(synth::home_b(), CivilDate{2017, 6, 5}, 7, rng);
  NillOptions options;
  options.battery.capacity_kwh = 3.0;  // small battery forces recoveries
  const auto result = apply_nill(home.aggregate, options);
  EXPECT_GT(result.state_changes, 0);
  for (double soc : result.soc_kwh) {
    EXPECT_GE(soc, -1e-9);
    EXPECT_LE(soc, options.battery.capacity_kwh + 1e-9);
  }
}

TEST(Nill, DefeatsNiomAndNilmLikeLeveller) {
  Rng rng(28);
  const auto home =
      synth::simulate_home(synth::home_a(), CivilDate{2017, 6, 5}, 7, rng);
  const auto result = apply_nill(home.aggregate, NillOptions{});
  niom::ThresholdNiom attack;
  const auto report = niom::evaluate(attack, result.metered, home.occupancy,
                                     niom::waking_hours());
  EXPECT_LT(std::fabs(report.mcc), 0.25);
}

TEST(Nill, ValidatesThresholdOrdering) {
  Rng rng(29);
  const auto home =
      synth::simulate_home(synth::home_a(), CivilDate{2017, 6, 5}, 2, rng);
  NillOptions bad;
  bad.soc_low = 0.9;
  EXPECT_THROW(apply_nill(home.aggregate, bad), InvalidArgument);
}

// --- obfuscation ---------------------------------------------------------------

TEST(Noise, ZeroSigmaIsIdentity) {
  Rng rng(31);
  ts::TimeSeries s(ts::TraceMeta{}, {1.0, 2.0, 3.0});
  EXPECT_EQ(inject_noise(s, 0.0, rng), s);
}

TEST(Noise, PerturbsAndStaysNonNegative) {
  Rng rng(32);
  ts::TimeSeries s(ts::TraceMeta{}, std::vector<double>(1000, 0.05));
  const auto noisy = inject_noise(s, 0.5, rng);
  bool changed = false;
  for (std::size_t i = 0; i < noisy.size(); ++i) {
    EXPECT_GE(noisy[i], 0.0);
    changed |= noisy[i] != s[i];
  }
  EXPECT_TRUE(changed);
}

TEST(Smoothing, ZeroRadiusIsIdentity) {
  ts::TimeSeries s(ts::TraceMeta{}, {1.0, 5.0, 1.0});
  EXPECT_EQ(smooth_reporting(s, 0), s);
}

TEST(Smoothing, ReducesVarianceKeepsEnergy) {
  Rng rng(33);
  const auto home =
      synth::simulate_home(synth::home_a(), CivilDate{2017, 6, 5}, 3, rng);
  const auto smooth = smooth_reporting(home.aggregate, 15);
  EXPECT_LT(stats::variance(smooth.values()),
            stats::variance(home.aggregate.values()));
  EXPECT_LT(billing_error(home.aggregate, smooth), 0.01);
}

TEST(BillingError, MeasuresEnergyDistortion) {
  ts::TimeSeries base(ts::TraceMeta{}, {1.0, 1.0});
  ts::TimeSeries up(ts::TraceMeta{}, {1.1, 1.1});
  EXPECT_NEAR(billing_error(base, up), 0.1, 1e-9);
}

TEST(BillingError, ZeroEnergyOriginalHasDefinedSemantics) {
  // An all-off trace is a legitimate capture. Relative error is 0 when the
  // defense also reports no energy, +inf the moment it bills a
  // zero-consumption home for anything (any nonzero bill is unboundedly
  // wrong relative to a zero denominator).
  ts::TimeSeries base(ts::TraceMeta{}, {1.0, 1.0});
  ts::TimeSeries zero(ts::TraceMeta{}, {0.0, 0.0});
  ts::TimeSeries also_zero(ts::TraceMeta{}, {0.0, 0.0});
  EXPECT_EQ(billing_error(zero, also_zero), 0.0);
  EXPECT_EQ(billing_error(zero, base),
            std::numeric_limits<double>::infinity());
  // The positive-energy path is untouched: modified may still be zero.
  EXPECT_NEAR(billing_error(base, zero), 1.0, 1e-9);
}

// --- differential privacy ---------------------------------------------------------

TEST(Dp, LaplaceScale) {
  EXPECT_DOUBLE_EQ(laplace_scale(10.0, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(laplace_scale(10.0, 2.0), 5.0);
  EXPECT_THROW(laplace_scale(0.0, 1.0), InvalidArgument);
  EXPECT_THROW(laplace_scale(1.0, 0.0), InvalidArgument);
}

TEST(Dp, LaplaceScaleRejectsDegenerateInputs) {
  // A negative sensitivity would silently yield a negative scale (and
  // meaningless noise); NaN/inf would propagate instead of erroring.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(laplace_scale(-1.0, 1.0), InvalidArgument);
  EXPECT_THROW(laplace_scale(1.0, -1.0), InvalidArgument);
  EXPECT_THROW(laplace_scale(kNan, 1.0), InvalidArgument);
  EXPECT_THROW(laplace_scale(1.0, kNan), InvalidArgument);
  EXPECT_THROW(laplace_scale(kInf, 1.0), InvalidArgument);
  EXPECT_THROW(laplace_scale(1.0, kInf), InvalidArgument);
}

TEST(Dp, AggregateRejectsEmptyAndMismatchedHomes) {
  Rng rng(3);
  EXPECT_THROW(dp_aggregate({}, 1.0, 10.0, rng), InvalidArgument);

  // Homes with different lengths (or grids) must be a checked error,
  // not out-of-bounds accumulation.
  std::vector<ts::TimeSeries> mismatched{
      ts::TimeSeries(ts::TraceMeta{}, {1.0, 2.0, 3.0}),
      ts::TimeSeries(ts::TraceMeta{}, {1.0, 2.0})};
  EXPECT_THROW(dp_aggregate(mismatched, 1.0, 10.0, rng), InvalidArgument);

  std::vector<ts::TimeSeries> mixed_grid{
      ts::TimeSeries(ts::TraceMeta{CivilDate{2017, 6, 1}, 0, 60}, {1.0}),
      ts::TimeSeries(ts::TraceMeta{CivilDate{2017, 6, 2}, 0, 60}, {1.0})};
  EXPECT_THROW(dp_aggregate(mixed_grid, 1.0, 10.0, rng), InvalidArgument);
}

std::vector<ts::TimeSeries> small_neighborhood(int homes, int days,
                                               std::uint64_t seed) {
  std::vector<ts::TimeSeries> out;
  const auto population = synth::home_population(homes);
  Rng rng(seed);
  for (const auto& cfg : population) {
    out.push_back(
        synth::simulate_home(cfg, CivilDate{2017, 6, 5}, days, rng).aggregate);
  }
  return out;
}

TEST(Dp, AggregateErrorShrinksWithEpsilon) {
  const auto homes = small_neighborhood(6, 2, 41);
  Rng r1(1), r2(1);
  const auto loose = dp_aggregate(homes, 0.05, 10.0, r1);
  const auto tight = dp_aggregate(homes, 5.0, 10.0, r2);
  EXPECT_LT(aggregate_error(homes, tight), aggregate_error(homes, loose));
}

TEST(Dp, AggregateErrorShrinksWithMoreHomes) {
  // Relative error of the sum falls as the neighborhood grows (same noise,
  // bigger signal) — the paper's "grid-scale analytics stay accurate".
  const auto few = small_neighborhood(3, 2, 42);
  const auto many = small_neighborhood(12, 2, 42);
  Rng r1(2), r2(2);
  const auto released_few = dp_aggregate(few, 0.5, 10.0, r1);
  const auto released_many = dp_aggregate(many, 0.5, 10.0, r2);
  EXPECT_LT(aggregate_error(many, released_many),
            aggregate_error(few, released_few));
}

TEST(Dp, SingleHomeNoiseDrownsOccupancySignal) {
  Rng rng(43);
  const auto home =
      synth::simulate_home(synth::home_a(), CivilDate{2017, 6, 5}, 7, rng);
  Rng noise_rng(44);
  const auto released = dp_single_home(home.aggregate, 0.1, 10.0, noise_rng);
  niom::ThresholdNiom attack;
  const auto report = niom::evaluate(attack, released, home.occupancy,
                                     niom::waking_hours());
  EXPECT_LT(std::fabs(report.mcc), 0.2);
}

TEST(Dp, RejectsMismatchedHomes) {
  auto homes = small_neighborhood(2, 2, 45);
  homes[1] = homes[1].slice(0, homes[1].size() - 10);
  Rng rng(1);
  EXPECT_THROW(dp_aggregate(homes, 1.0, 10.0, rng), InvalidArgument);
}

class BatteryIntensity : public ::testing::TestWithParam<double> {};

TEST_P(BatteryIntensity, VarianceDecreasesMonotonically) {
  Rng rng(46);
  const auto home =
      synth::simulate_home(synth::home_a(), CivilDate{2017, 6, 5}, 3, rng);
  const auto weaker =
      apply_battery(home.aggregate, BatteryOptions{}, GetParam() * 0.5);
  const auto stronger =
      apply_battery(home.aggregate, BatteryOptions{}, GetParam());
  EXPECT_LE(stats::variance(stronger.metered.values()),
            stats::variance(weaker.metered.values()) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Intensities, BatteryIntensity,
                         ::testing::Values(0.2, 0.5, 0.8, 1.0));

}  // namespace
}  // namespace pmiot::defense
