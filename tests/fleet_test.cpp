// Tests for the fleet-scale gateway (src/fleet): deterministic shard-seeded
// world generation, bitwise equality of the batched fleet pass with the
// per-home serial oracle at several pool widths, and a churn soak over a
// long horizon.
#include <gtest/gtest.h>

#include <cstddef>

#include "common/error.h"
#include "common/parallel.h"
#include "fleet/fleet_gateway.h"
#include "ml/random_forest.h"
#include "net/anomaly.h"
#include "net/fingerprint.h"

namespace pmiot::fleet {
namespace {

struct Models {
  ml::RandomForest forest;
  net::AnomalyDetector detector;
};

/// Trains the shared classifier + detector once per process, on windows the
/// same length as the fleet gateway's default (120 s).
const Models& trained_models() {
  static const Models& models = *[] {
    auto* m = new Models;
    Rng rng(3);
    net::FingerprintOptions options;
    options.instances_per_type = 3;
    options.duration_s = 2 * 3600.0;
    options.window_s = fleet_gateway_defaults().window_s;
    const auto data = net::build_fingerprint_dataset(options, rng);
    m->forest.fit(data);
    m->detector.fit(data);
    return m;
  }();
  return models;
}

TEST(Fleet, MakeHomeIsDeterministicPerHomeIndex) {
  FleetOptions options;
  options.duration_s = 600.0;
  const auto a = make_home(options, 3);
  const auto b = make_home(options, 3);
  ASSERT_EQ(a.devices.size(), b.devices.size());
  ASSERT_EQ(a.packets.size(), b.packets.size());
  EXPECT_EQ(a.infected, b.infected);
  for (std::size_t i = 0; i < a.packets.size(); ++i) {
    ASSERT_EQ(a.packets[i].timestamp_s, b.packets[i].timestamp_s);
    ASSERT_EQ(a.packets[i].src_ip, b.packets[i].src_ip);
    ASSERT_EQ(a.packets[i].size_bytes, b.packets[i].size_bytes);
  }

  // A different home index is a different world.
  const auto c = make_home(options, 4);
  bool differs = a.devices.size() != c.devices.size() ||
                 a.packets.size() != c.packets.size();
  for (std::size_t i = 0; !differs && i < a.packets.size(); ++i) {
    differs = a.packets[i].timestamp_s != c.packets[i].timestamp_s;
  }
  EXPECT_TRUE(differs);
}

TEST(Fleet, MakeHomeIntoReusedBuffersMatchFreshMakeHome) {
  // The allocation-free shard path: one capture + arena reused across homes
  // (and revisited homes) must produce exactly what the returning overload
  // builds from scratch.
  FleetOptions options;
  options.duration_s = 600.0;
  options.join_fraction = 0.3;
  options.leave_fraction = 0.3;
  HomeCapture reused;
  HomeArena arena;
  for (const std::size_t home : {0u, 7u, 3u, 7u, 0u}) {  // revisits included
    const auto fresh = make_home(options, home);
    make_home_into(options, home, reused, arena);
    EXPECT_EQ(reused.infected, fresh.infected) << "home " << home;
    ASSERT_EQ(reused.devices.size(), fresh.devices.size()) << "home " << home;
    for (std::size_t d = 0; d < fresh.devices.size(); ++d) {
      EXPECT_EQ(reused.devices[d].profile.name, fresh.devices[d].profile.name);
      EXPECT_EQ(reused.devices[d].profile.infection,
                fresh.devices[d].profile.infection);
      EXPECT_EQ(reused.devices[d].join_s, fresh.devices[d].join_s);
      EXPECT_EQ(reused.devices[d].leave_s, fresh.devices[d].leave_s);
    }
    ASSERT_EQ(reused.packets.size(), fresh.packets.size()) << "home " << home;
    for (std::size_t i = 0; i < fresh.packets.size(); ++i) {
      const auto& p = reused.packets[i];
      const auto& q = fresh.packets[i];
      ASSERT_TRUE(p.timestamp_s == q.timestamp_s && p.src_ip == q.src_ip &&
                  p.dst_ip == q.dst_ip && p.src_port == q.src_port &&
                  p.dst_port == q.dst_port && p.protocol == q.protocol &&
                  p.size_bytes == q.size_bytes)
          << "home " << home << " packet " << i;
    }
  }
}

TEST(Fleet, MakeHomeRespectsRosterAndLifecycles) {
  FleetOptions options;
  options.duration_s = 600.0;
  options.join_fraction = 0.5;
  options.leave_fraction = 0.5;
  for (std::size_t home = 0; home < 16; ++home) {
    const auto world = make_home(options, home);
    ASSERT_GE(world.devices.size(),
              static_cast<std::size_t>(options.min_devices));
    ASSERT_LE(world.devices.size(),
              static_cast<std::size_t>(options.max_devices));
    if (world.infected != kNoInfectedDevice) {
      ASSERT_LT(world.infected, world.devices.size());
      const auto& sick = world.devices[world.infected];
      EXPECT_NE(sick.profile.infection, net::Infection::kNone);
      // The compromised device keeps the full lifetime.
      EXPECT_EQ(sick.join_s, 0.0);
      EXPECT_EQ(sick.leave_s, options.duration_s);
    }
    // The merged capture is time-sorted and every device's emissions stay
    // inside its [join_s, leave_s) lifecycle.
    for (std::size_t i = 1; i < world.packets.size(); ++i) {
      ASSERT_LE(world.packets[i - 1].timestamp_s,
                world.packets[i].timestamp_s);
    }
    // Lifecycle check on each device's own WAN-bound emissions. (LAN-to-LAN
    // packets can carry another device's source address: a hub's poll
    // exchange includes the peer's response, and that traffic belongs to
    // the hub's lifecycle, not the peer's.)
    for (const auto& device : world.devices) {
      ASSERT_LE(0.0, device.join_s);
      ASSERT_LE(device.join_s, device.leave_s);
      ASSERT_LE(device.leave_s, options.duration_s);
      for (const auto& p : world.packets) {
        if (p.src_ip != device.profile.ip || net::is_lan(p.dst_ip)) continue;
        ASSERT_GE(p.timestamp_s, device.join_s);
        ASSERT_LT(p.timestamp_s, device.leave_s);
      }
    }
  }
}

TEST(Fleet, FleetPassMatchesSerialOracleAcrossPoolWidths) {
  const auto& models = trained_models();
  FleetOptions options;
  options.homes = 24;
  options.duration_s = 600.0;
  options.base_seed = 7;
  const FleetGateway fleet(models.forest, models.detector, options);
  const auto oracle = fleet.process_serial();
  EXPECT_GT(oracle.packets, 0u);

  for (const std::size_t width : {std::size_t{1}, std::size_t{4}}) {
    par::ThreadPool pool(width);
    par::ScopedPoolOverride scoped(pool);
    const auto batched = fleet.process_fleet();
    EXPECT_EQ(describe_divergence(batched, oracle), "")
        << "pool width " << width;
    EXPECT_GT(batched.windows_classified, 0u);
  }
  // And at the process-default pool width.
  const auto batched = fleet.process_fleet();
  EXPECT_EQ(describe_divergence(batched, oracle), "");
}

TEST(Fleet, SoakChurnOverLongHorizon) {
  const auto& models = trained_models();
  FleetOptions options;
  options.homes = 6;
  options.duration_s = 4 * 3600.0;  // 120 gateway windows per home
  options.base_seed = 11;
  options.infected_fraction = 1.0;  // every home hosts one compromise
  options.join_fraction = 0.5;
  options.leave_fraction = 0.5;
  const FleetGateway fleet(models.forest, models.detector, options);
  const auto serial = fleet.process_serial();
  const auto batched = fleet.process_fleet();
  EXPECT_EQ(describe_divergence(batched, serial), "");
  EXPECT_GT(batched.windows_classified, 0u);
  // With a compromise in every home over a long horizon, the fleet must
  // catch at least most of them — and drop traffic after it does.
  EXPECT_GE(batched.quarantined_devices, static_cast<std::uint64_t>(
                                             options.homes / 2));
  EXPECT_GT(batched.quarantine_packets_dropped, 0u);
}

TEST(Fleet, RejectsUntrainedDetector) {
  const auto& models = trained_models();
  net::AnomalyDetector unfitted;
  EXPECT_THROW(FleetGateway(models.forest, unfitted, FleetOptions{}),
               InvalidArgument);
}

TEST(Fleet, RejectsEmptyPopulationAndBadRoster) {
  const auto& models = trained_models();
  FleetOptions none;
  none.homes = 0;
  EXPECT_THROW(FleetGateway(models.forest, models.detector, none),
               InvalidArgument);
  FleetOptions bad;
  bad.min_devices = 5;
  bad.max_devices = 4;
  EXPECT_THROW(make_home(bad, 0), InvalidArgument);
}

}  // namespace
}  // namespace pmiot::fleet
