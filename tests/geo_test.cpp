// Unit tests for the solar geometry library: distances, solar position,
// and the SunSpot inversion primitives.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "geo/solar_geometry.h"

namespace pmiot::geo {
namespace {

constexpr double kDeg2Rad = M_PI / 180.0;

TEST(Haversine, ZeroForIdenticalPoints) {
  const LatLon p{42.39, -72.53};
  EXPECT_DOUBLE_EQ(haversine_km(p, p), 0.0);
}

TEST(Haversine, KnownCityDistances) {
  // New York <-> Los Angeles is about 3936 km.
  const LatLon nyc{40.7128, -74.0060};
  const LatLon la{34.0522, -118.2437};
  EXPECT_NEAR(haversine_km(nyc, la), 3936.0, 40.0);
  // Boston <-> Amherst MA is about 120 km.
  const LatLon boston{42.3601, -71.0589};
  const LatLon amherst{42.3732, -72.5199};
  EXPECT_NEAR(haversine_km(boston, amherst), 120.0, 10.0);
}

TEST(Haversine, Symmetric) {
  const LatLon a{10, 20}, b{-30, 150};
  EXPECT_DOUBLE_EQ(haversine_km(a, b), haversine_km(b, a));
}

TEST(Haversine, OneDegreeLatitudeIsAbout111Km) {
  const LatLon a{40.0, -100.0}, b{41.0, -100.0};
  EXPECT_NEAR(haversine_km(a, b), 111.2, 1.0);
}

TEST(Declination, ZeroNearEquinoxMaxNearSolstice) {
  // March equinox ~ day 80: declination near 0.
  EXPECT_NEAR(declination_rad(80), 0.0, 2.0 * kDeg2Rad);
  // June solstice ~ day 172: ~ +23.44 deg.
  EXPECT_NEAR(declination_rad(172), 23.44 * kDeg2Rad, 0.5 * kDeg2Rad);
  // December solstice ~ day 355: ~ -23.44 deg.
  EXPECT_NEAR(declination_rad(355), -23.44 * kDeg2Rad, 0.5 * kDeg2Rad);
}

TEST(EquationOfTime, StaysInKnownEnvelope) {
  for (int doy = 1; doy <= 365; ++doy) {
    const double e = equation_of_time_min(doy);
    EXPECT_GT(e, -15.0);
    EXPECT_LT(e, 17.5);
  }
  // Early November has the largest positive value (~ +16.5 min).
  EXPECT_GT(equation_of_time_min(308), 15.0);
  // Mid-February has the most negative (~ -14 min).
  EXPECT_LT(equation_of_time_min(45), -13.0);
}

TEST(SolarTimes, EquinoxDayIsNearTwelveHours) {
  const LatLon site{42.0, -72.0};
  const auto times = solar_times_utc(site, CivilDate{2017, 3, 20});
  EXPECT_NEAR(times.day_length_min(), 12 * 60.0, 15.0);
  EXPECT_FALSE(times.polar_day);
  EXPECT_FALSE(times.polar_night);
}

TEST(SolarTimes, SummerLongerThanWinterInNorth) {
  const LatLon site{42.0, -72.0};
  const auto june = solar_times_utc(site, CivilDate{2017, 6, 21});
  const auto december = solar_times_utc(site, CivilDate{2017, 12, 21});
  EXPECT_GT(june.day_length_min(), 14.5 * 60.0);
  EXPECT_LT(december.day_length_min(), 9.5 * 60.0);
}

TEST(SolarTimes, NoonShiftsWithLongitude) {
  // 15 degrees of longitude = 60 minutes of solar time.
  const CivilDate date{2017, 6, 1};
  const auto east = solar_times_utc(LatLon{40.0, -75.0}, date);
  const auto west = solar_times_utc(LatLon{40.0, -90.0}, date);
  EXPECT_NEAR(west.solar_noon_utc_min - east.solar_noon_utc_min, 60.0, 0.5);
}

TEST(SolarTimes, PolarDayAndNight) {
  const auto midsummer = solar_times_utc(LatLon{75.0, 0.0}, CivilDate{2017, 6, 21});
  EXPECT_TRUE(midsummer.polar_day);
  const auto midwinter =
      solar_times_utc(LatLon{75.0, 0.0}, CivilDate{2017, 12, 21});
  EXPECT_TRUE(midwinter.polar_night);
}

TEST(SolarElevation, PositiveAtNoonNegativeAtMidnight) {
  const LatLon site{42.0, -72.0};
  const CivilDate date{2017, 6, 1};
  const auto times = solar_times_utc(site, date);
  EXPECT_GT(solar_elevation_rad(site, date, times.solar_noon_utc_min), 0.0);
  EXPECT_LT(solar_elevation_rad(site, date,
                                times.solar_noon_utc_min - 720.0),
            0.0);
}

TEST(SolarElevation, NearZeroAtSunrise) {
  const LatLon site{42.0, -72.0};
  const CivilDate date{2017, 6, 1};
  const auto times = solar_times_utc(site, date);
  const double elev = solar_elevation_rad(site, date, times.sunrise_utc_min);
  // -0.833 deg refraction horizon.
  EXPECT_NEAR(elev, -0.833 * kDeg2Rad, 0.2 * kDeg2Rad);
}

TEST(SolarElevation, MaxAtSolarNoon) {
  const LatLon site{35.0, -100.0};
  const CivilDate date{2017, 7, 4};
  const auto times = solar_times_utc(site, date);
  const double noon = solar_elevation_rad(site, date, times.solar_noon_utc_min);
  EXPECT_GT(noon, solar_elevation_rad(site, date, times.solar_noon_utc_min - 120));
  EXPECT_GT(noon, solar_elevation_rad(site, date, times.solar_noon_utc_min + 120));
}

TEST(Inversion, LongitudeRoundTrip) {
  for (double lon : {-122.0, -95.5, -71.0}) {
    for (int doy : {30, 120, 250, 340}) {
      const CivilDate date = add_days(CivilDate{2017, 1, 1}, doy - 1);
      const auto times = solar_times_utc(LatLon{40.0, lon}, date);
      const double recovered =
          longitude_from_solar_noon(times.solar_noon_utc_min, doy);
      EXPECT_NEAR(recovered, lon, 0.05) << "lon " << lon << " doy " << doy;
    }
  }
}

TEST(Inversion, LatitudeRoundTrip) {
  for (double lat : {30.0, 42.5, 55.0}) {
    for (int doy : {120, 172, 300}) {
      const CivilDate date = add_days(CivilDate{2017, 1, 1}, doy - 1);
      const auto times = solar_times_utc(LatLon{lat, -72.0}, date);
      const double recovered =
          latitude_from_day_length(times.day_length_min(), doy, true);
      EXPECT_NEAR(recovered, lat, 0.3) << "lat " << lat << " doy " << doy;
    }
  }
}

TEST(Inversion, SouthernHemisphereHint) {
  const int doy = 172;  // northern summer = southern winter
  const CivilDate date = add_days(CivilDate{2017, 1, 1}, doy - 1);
  const auto times = solar_times_utc(LatLon{-35.0, 150.0}, date);
  const double recovered =
      latitude_from_day_length(times.day_length_min(), doy, false);
  EXPECT_NEAR(recovered, -35.0, 0.5);
}

TEST(Inversion, RejectsBadDayLength) {
  EXPECT_THROW(latitude_from_day_length(0.0, 100), InvalidArgument);
  EXPECT_THROW(latitude_from_day_length(kMinutesPerDay + 0.0, 100),
               InvalidArgument);
}

class LatLonSweep
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(LatLonSweep, FullRoundTripWithin50Km) {
  const auto [lat, lon] = GetParam();
  const int doy = 130;
  const CivilDate date = add_days(CivilDate{2017, 1, 1}, doy - 1);
  const auto times = solar_times_utc(LatLon{lat, lon}, date);
  const double rlon = longitude_from_solar_noon(times.solar_noon_utc_min, doy);
  const double rlat =
      latitude_from_day_length(times.day_length_min(), doy, lat >= 0.0);
  EXPECT_LT(haversine_km(LatLon{lat, lon}, LatLon{rlat, rlon}), 50.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sites, LatLonSweep,
    ::testing::Values(std::pair{30.33, -81.66}, std::pair{47.61, -122.33},
                      std::pair{35.78, -78.64}, std::pair{42.39, -72.53},
                      std::pair{-33.87, 151.21}, std::pair{51.51, -0.13}));

}  // namespace
}  // namespace pmiot::geo
