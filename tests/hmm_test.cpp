// Unit tests for the Gaussian HMM and the factorial HMM disaggregator.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "ml/fhmm.h"
#include "ml/hmm.h"

namespace pmiot::ml {
namespace {

/// A well-separated 2-state HMM (low ~0, high ~5) with sticky transitions.
HmmParams two_state_params() {
  HmmParams p;
  p.initial = {0.5, 0.5};
  p.transition = {{0.95, 0.05}, {0.05, 0.95}};
  p.mean = {0.0, 5.0};
  p.stddev = {0.3, 0.3};
  return p;
}

/// Samples an observation sequence plus true state path from params.
std::pair<std::vector<double>, std::vector<int>> sample(const HmmParams& p,
                                                        int n, Rng& rng) {
  std::vector<double> obs(static_cast<std::size_t>(n));
  std::vector<int> states(static_cast<std::size_t>(n));
  std::size_t s = rng.categorical(p.initial);
  for (int t = 0; t < n; ++t) {
    states[static_cast<std::size_t>(t)] = static_cast<int>(s);
    obs[static_cast<std::size_t>(t)] = rng.normal(p.mean[s], p.stddev[s]);
    s = rng.categorical(p.transition[s]);
  }
  return {obs, states};
}

TEST(HmmParams, ValidationCatchesBadShapes) {
  auto p = two_state_params();
  p.initial = {0.5};
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = two_state_params();
  p.transition[0] = {0.5, 0.6};
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = two_state_params();
  p.stddev[1] = 0.0;
  EXPECT_THROW(p.validate(), InvalidArgument);
}

TEST(GaussianHmm, ViterbiRecoversStates) {
  Rng rng(1);
  const auto params = two_state_params();
  const auto [obs, truth] = sample(params, 500, rng);
  GaussianHmm hmm(params);
  const auto decoded = hmm.viterbi(obs);
  std::size_t correct = 0;
  for (std::size_t t = 0; t < truth.size(); ++t) {
    correct += decoded[t] == truth[t] ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(correct) / truth.size(), 0.98);
}

TEST(GaussianHmm, LogLikelihoodPrefersTrueModel) {
  Rng rng(2);
  const auto params = two_state_params();
  const auto [obs, truth] = sample(params, 400, rng);
  (void)truth;
  GaussianHmm good(params);
  auto bad_params = params;
  bad_params.mean = {2.0, 3.0};  // wrong emission means
  GaussianHmm bad(bad_params);
  EXPECT_GT(good.log_likelihood(obs), bad.log_likelihood(obs));
}

TEST(GaussianHmm, PosteriorRowsSumToOne) {
  Rng rng(3);
  const auto params = two_state_params();
  const auto [obs, truth] = sample(params, 200, rng);
  (void)truth;
  GaussianHmm hmm(params);
  const auto gamma = hmm.posterior(obs);
  ASSERT_EQ(gamma.size(), obs.size());
  for (const auto& row : gamma) {
    double sum = 0.0;
    for (double g : row) {
      EXPECT_GE(g, 0.0);
      sum += g;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(GaussianHmm, BaumWelchIncreasesLikelihood) {
  Rng rng(4);
  const auto params = two_state_params();
  const auto [obs, truth] = sample(params, 600, rng);
  (void)truth;
  auto init = GaussianHmm::init_from_data(2, obs, rng);
  const double before = init.log_likelihood(obs);
  const auto result = init.fit(obs, 30);
  EXPECT_GE(result.log_likelihood, before - 1e-6);
  EXPECT_GE(result.iterations, 1);
}

TEST(GaussianHmm, BaumWelchRecoversMeans) {
  Rng rng(5);
  const auto params = two_state_params();
  const auto [obs, truth] = sample(params, 1500, rng);
  (void)truth;
  auto hmm = GaussianHmm::init_from_data(2, obs, rng);
  hmm.fit(obs, 50);
  std::vector<double> means = hmm.params().mean;
  std::sort(means.begin(), means.end());
  EXPECT_NEAR(means[0], 0.0, 0.2);
  EXPECT_NEAR(means[1], 5.0, 0.2);
}

TEST(GaussianHmm, InitFromDataSortsStateMeans) {
  Rng rng(6);
  std::vector<double> obs;
  for (int i = 0; i < 200; ++i) {
    obs.push_back(rng.normal(i % 2 == 0 ? 1.0 : 8.0, 0.1));
  }
  const auto hmm = GaussianHmm::init_from_data(2, obs, rng);
  EXPECT_LT(hmm.params().mean[0], hmm.params().mean[1]);
}

TEST(GaussianHmm, RejectsEmptyObservations) {
  GaussianHmm hmm(two_state_params());
  EXPECT_THROW(hmm.viterbi({}), InvalidArgument);
  EXPECT_THROW(hmm.log_likelihood({}), InvalidArgument);
}

// --- Factorial HMM ----------------------------------------------------------

/// Two appliances: a 1 kW device and a 3 kW device, both sticky on/off.
std::vector<ApplianceChain> two_chains() {
  ApplianceChain a;
  a.name = "one";
  a.state_power = {0.0, 1.0};
  a.initial = {0.9, 0.1};
  a.transition = {{0.95, 0.05}, {0.1, 0.9}};
  ApplianceChain b;
  b.name = "three";
  b.state_power = {0.0, 3.0};
  b.initial = {0.9, 0.1};
  b.transition = {{0.97, 0.03}, {0.08, 0.92}};
  return {a, b};
}

TEST(ApplianceChain, ValidationWorks) {
  auto chains = two_chains();
  chains[0].initial = {0.5, 0.6};
  EXPECT_THROW(chains[0].validate(), InvalidArgument);
}

TEST(FactorialHmm, JointStateCount) {
  FactorialHmm fhmm(two_chains(), 0.1);
  EXPECT_EQ(fhmm.joint_state_count(), 4u);
  EXPECT_EQ(fhmm.num_appliances(), 2u);
}

TEST(FactorialHmm, DecodesTwoApplianceSum) {
  Rng rng(7);
  const auto chains = two_chains();
  // Simulate the two chains and their noisy sum.
  const int n = 400;
  std::vector<std::vector<double>> truth(2, std::vector<double>(n));
  std::vector<double> aggregate(n);
  std::vector<std::size_t> state = {0, 0};
  for (int t = 0; t < n; ++t) {
    double total = 0.0;
    for (std::size_t c = 0; c < 2; ++c) {
      truth[c][static_cast<std::size_t>(t)] = chains[c].state_power[state[c]];
      total += chains[c].state_power[state[c]];
      state[c] = rng.categorical(chains[c].transition[state[c]]);
    }
    aggregate[static_cast<std::size_t>(t)] = total + rng.normal(0.0, 0.05);
  }

  FactorialHmm fhmm(chains, 0.08);
  const auto decoding = fhmm.decode(aggregate);
  ASSERT_EQ(decoding.appliance_power.size(), 2u);
  for (std::size_t c = 0; c < 2; ++c) {
    std::size_t correct = 0;
    for (int t = 0; t < n; ++t) {
      correct += std::fabs(decoding.appliance_power[c][static_cast<std::size_t>(t)] -
                           truth[c][static_cast<std::size_t>(t)]) < 0.5
                     ? 1
                     : 0;
    }
    EXPECT_GT(static_cast<double>(correct) / n, 0.95) << chains[c].name;
  }
}

TEST(FactorialHmm, RejectsHugeJointSpace) {
  // 13 chains x 2 states = 8192 joint states > 4096 cap.
  std::vector<ApplianceChain> chains;
  for (int i = 0; i < 13; ++i) {
    auto c = two_chains()[0];
    c.name = "c" + std::to_string(i);
    chains.push_back(c);
  }
  EXPECT_THROW(FactorialHmm(chains, 0.1), InvalidArgument);
}

TEST(LearnChain, DiscoversPowerLevels) {
  Rng rng(8);
  std::vector<double> trace;
  for (int cycle = 0; cycle < 30; ++cycle) {
    for (int t = 0; t < 10; ++t) trace.push_back(rng.normal(0.0, 0.01));
    for (int t = 0; t < 6; ++t) trace.push_back(rng.normal(2.0, 0.02));
  }
  const auto chain = learn_chain("test", trace, 2, rng);
  ASSERT_EQ(chain.num_states(), 2u);
  EXPECT_NEAR(chain.state_power[0], 0.0, 0.1);
  EXPECT_NEAR(chain.state_power[1], 2.0, 0.1);
  // Sticky dynamics: staying is more likely than switching.
  EXPECT_GT(chain.transition[0][0], chain.transition[0][1]);
  EXPECT_GT(chain.transition[1][1], chain.transition[1][0]);
}

TEST(LearnChain, StatePowersAreSorted) {
  Rng rng(9);
  std::vector<double> trace;
  for (int i = 0; i < 300; ++i) {
    trace.push_back((i / 10) % 3 == 0 ? 5.0 : ((i / 10) % 3 == 1 ? 0.0 : 2.0));
  }
  const auto chain = learn_chain("three-level", trace, 3, rng);
  for (std::size_t s = 1; s < chain.num_states(); ++s) {
    EXPECT_LE(chain.state_power[s - 1], chain.state_power[s]);
  }
}

class FhmmNoise : public ::testing::TestWithParam<double> {};

TEST_P(FhmmNoise, DecodingDegradesGracefully) {
  Rng rng(10);
  const auto chains = two_chains();
  const int n = 200;
  std::vector<double> aggregate(n);
  std::vector<std::size_t> state = {0, 0};
  for (int t = 0; t < n; ++t) {
    double total = 0.0;
    for (std::size_t c = 0; c < 2; ++c) {
      total += chains[c].state_power[state[c]];
      state[c] = rng.categorical(chains[c].transition[state[c]]);
    }
    aggregate[static_cast<std::size_t>(t)] =
        total + rng.normal(0.0, GetParam());
  }
  FactorialHmm fhmm(chains, std::max(0.05, GetParam()));
  const auto decoding = fhmm.decode(aggregate);
  EXPECT_EQ(decoding.appliance_power[0].size(), static_cast<std::size_t>(n));
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, FhmmNoise,
                         ::testing::Values(0.01, 0.1, 0.3, 0.6));

}  // namespace
}  // namespace pmiot::ml
