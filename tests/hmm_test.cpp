// Unit tests for the Gaussian HMM and the factorial HMM disaggregator.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "ml/fhmm.h"
#include "ml/hmm.h"

namespace pmiot::ml {
namespace {

/// A well-separated 2-state HMM (low ~0, high ~5) with sticky transitions.
HmmParams two_state_params() {
  HmmParams p;
  p.initial = {0.5, 0.5};
  p.transition = {{0.95, 0.05}, {0.05, 0.95}};
  p.mean = {0.0, 5.0};
  p.stddev = {0.3, 0.3};
  return p;
}

/// Samples an observation sequence plus true state path from params.
std::pair<std::vector<double>, std::vector<int>> sample(const HmmParams& p,
                                                        int n, Rng& rng) {
  std::vector<double> obs(static_cast<std::size_t>(n));
  std::vector<int> states(static_cast<std::size_t>(n));
  std::size_t s = rng.categorical(p.initial);
  for (int t = 0; t < n; ++t) {
    states[static_cast<std::size_t>(t)] = static_cast<int>(s);
    obs[static_cast<std::size_t>(t)] = rng.normal(p.mean[s], p.stddev[s]);
    s = rng.categorical(p.transition[s]);
  }
  return {obs, states};
}

TEST(HmmParams, ValidationCatchesBadShapes) {
  auto p = two_state_params();
  p.initial = {0.5};
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = two_state_params();
  p.transition[0] = {0.5, 0.6};
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = two_state_params();
  p.stddev[1] = 0.0;
  EXPECT_THROW(p.validate(), InvalidArgument);
}

TEST(GaussianHmm, ViterbiRecoversStates) {
  Rng rng(1);
  const auto params = two_state_params();
  const auto [obs, truth] = sample(params, 500, rng);
  GaussianHmm hmm(params);
  const auto decoded = hmm.viterbi(obs);
  std::size_t correct = 0;
  for (std::size_t t = 0; t < truth.size(); ++t) {
    correct += decoded[t] == truth[t] ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(truth.size()),
            0.98);
}

TEST(GaussianHmm, LogLikelihoodPrefersTrueModel) {
  Rng rng(2);
  const auto params = two_state_params();
  const auto [obs, truth] = sample(params, 400, rng);
  (void)truth;
  GaussianHmm good(params);
  auto bad_params = params;
  bad_params.mean = {2.0, 3.0};  // wrong emission means
  GaussianHmm bad(bad_params);
  EXPECT_GT(good.log_likelihood(obs), bad.log_likelihood(obs));
}

TEST(GaussianHmm, PosteriorRowsSumToOne) {
  Rng rng(3);
  const auto params = two_state_params();
  const auto [obs, truth] = sample(params, 200, rng);
  (void)truth;
  GaussianHmm hmm(params);
  const auto gamma = hmm.posterior(obs);
  ASSERT_EQ(gamma.size(), obs.size());
  for (const auto& row : gamma) {
    double sum = 0.0;
    for (double g : row) {
      EXPECT_GE(g, 0.0);
      sum += g;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(GaussianHmm, BaumWelchIncreasesLikelihood) {
  Rng rng(4);
  const auto params = two_state_params();
  const auto [obs, truth] = sample(params, 600, rng);
  (void)truth;
  auto init = GaussianHmm::init_from_data(2, obs, rng);
  const double before = init.log_likelihood(obs);
  const auto result = init.fit(obs, 30);
  EXPECT_GE(result.log_likelihood, before - 1e-6);
  EXPECT_GE(result.iterations, 1);
}

TEST(GaussianHmm, BaumWelchRecoversMeans) {
  Rng rng(5);
  const auto params = two_state_params();
  const auto [obs, truth] = sample(params, 1500, rng);
  (void)truth;
  auto hmm = GaussianHmm::init_from_data(2, obs, rng);
  hmm.fit(obs, 50);
  std::vector<double> means = hmm.params().mean;
  std::sort(means.begin(), means.end());
  EXPECT_NEAR(means[0], 0.0, 0.2);
  EXPECT_NEAR(means[1], 5.0, 0.2);
}

TEST(GaussianHmm, InitFromDataSortsStateMeans) {
  Rng rng(6);
  std::vector<double> obs;
  for (int i = 0; i < 200; ++i) {
    obs.push_back(rng.normal(i % 2 == 0 ? 1.0 : 8.0, 0.1));
  }
  const auto hmm = GaussianHmm::init_from_data(2, obs, rng);
  EXPECT_LT(hmm.params().mean[0], hmm.params().mean[1]);
}

TEST(GaussianHmm, RejectsEmptyObservations) {
  GaussianHmm hmm(two_state_params());
  EXPECT_THROW(hmm.viterbi({}), InvalidArgument);
  EXPECT_THROW(hmm.log_likelihood({}), InvalidArgument);
}

// --- Factorial HMM ----------------------------------------------------------

/// Two appliances: a 1 kW device and a 3 kW device, both sticky on/off.
std::vector<ApplianceChain> two_chains() {
  ApplianceChain a;
  a.name = "one";
  a.state_power = {0.0, 1.0};
  a.initial = {0.9, 0.1};
  a.transition = {{0.95, 0.05}, {0.1, 0.9}};
  ApplianceChain b;
  b.name = "three";
  b.state_power = {0.0, 3.0};
  b.initial = {0.9, 0.1};
  b.transition = {{0.97, 0.03}, {0.08, 0.92}};
  return {a, b};
}

TEST(ApplianceChain, ValidationWorks) {
  auto chains = two_chains();
  chains[0].initial = {0.5, 0.6};
  EXPECT_THROW(chains[0].validate(), InvalidArgument);
}

TEST(FactorialHmm, JointStateCount) {
  FactorialHmm fhmm(two_chains(), 0.1);
  EXPECT_EQ(fhmm.joint_state_count(), 4u);
  EXPECT_EQ(fhmm.num_appliances(), 2u);
}

TEST(FactorialHmm, DecodesTwoApplianceSum) {
  Rng rng(7);
  const auto chains = two_chains();
  // Simulate the two chains and their noisy sum.
  const int n = 400;
  std::vector<std::vector<double>> truth(2, std::vector<double>(n));
  std::vector<double> aggregate(n);
  std::vector<std::size_t> state = {0, 0};
  for (int t = 0; t < n; ++t) {
    double total = 0.0;
    for (std::size_t c = 0; c < 2; ++c) {
      truth[c][static_cast<std::size_t>(t)] = chains[c].state_power[state[c]];
      total += chains[c].state_power[state[c]];
      state[c] = rng.categorical(chains[c].transition[state[c]]);
    }
    aggregate[static_cast<std::size_t>(t)] = total + rng.normal(0.0, 0.05);
  }

  FactorialHmm fhmm(chains, 0.08);
  const auto decoding = fhmm.decode(aggregate);
  ASSERT_EQ(decoding.appliance_power.size(), 2u);
  for (std::size_t c = 0; c < 2; ++c) {
    std::size_t correct = 0;
    for (int t = 0; t < n; ++t) {
      correct += std::fabs(decoding.appliance_power[c][static_cast<std::size_t>(t)] -
                           truth[c][static_cast<std::size_t>(t)]) < 0.5
                     ? 1
                     : 0;
    }
    EXPECT_GT(static_cast<double>(correct) / n, 0.95) << chains[c].name;
  }
}

TEST(FactorialHmm, RejectsHugeJointSpace) {
  // 21 chains x 2 states = 2^21 joint states > the 2^20 cap.
  std::vector<ApplianceChain> chains;
  for (int i = 0; i < 21; ++i) {
    auto c = two_chains()[0];
    c.name = "c" + std::to_string(i);
    chains.push_back(c);
  }
  EXPECT_THROW(FactorialHmm(chains, 0.1), InvalidArgument);
}

TEST(FactorialHmm, DecodesBeyondTheOldJointCap) {
  // 13 chains x 2 states = 8192 joint states — over the seed's 4096 cap,
  // which only existed to bound the K^2 joint transition table the factored
  // decoder no longer builds.
  std::vector<ApplianceChain> chains;
  for (int i = 0; i < 13; ++i) {
    auto c = two_chains()[i % 2];
    c.name = "c" + std::to_string(i);
    c.state_power[1] = 0.5 + 0.25 * i;
    chains.push_back(c);
  }
  FactorialHmm fhmm(chains, 0.2);
  EXPECT_EQ(fhmm.joint_state_count(), 8192u);
  const std::vector<double> aggregate = {0.0, 0.5, 0.75, 0.0};
  const auto decoding = fhmm.decode(aggregate);
  ASSERT_EQ(decoding.appliance_power.size(), 13u);
  ASSERT_EQ(decoding.joint_path.size(), aggregate.size());
  for (std::size_t j : decoding.joint_path) EXPECT_LT(j, 8192u);
}

// --- factored vs naive decoder equivalence ----------------------------------

/// Random stochastic vector of length n with all entries bounded away from 0.
std::vector<double> random_simplex(std::size_t n, Rng& rng) {
  std::vector<double> v(n);
  double sum = 0.0;
  for (auto& x : v) {
    x = rng.uniform(0.05, 1.0);
    sum += x;
  }
  for (auto& x : v) x /= sum;
  return v;
}

/// Random model with `num_chains` chains of 2-5 states each, truncated so
/// the joint space stays small enough for the naive reference.
std::vector<ApplianceChain> random_chains(std::size_t num_chains, Rng& rng,
                                          std::size_t max_joint = 1024) {
  std::vector<ApplianceChain> chains;
  std::size_t joint = 1;
  for (std::size_t c = 0; c < num_chains; ++c) {
    auto n = static_cast<std::size_t>(rng.uniform_int(2, 5));
    while (joint * n > max_joint && n > 2) --n;
    if (joint * n > max_joint) break;
    joint *= n;
    ApplianceChain chain;
    chain.name = "chain" + std::to_string(c);
    for (std::size_t s = 0; s < n; ++s) {
      chain.state_power.push_back(s == 0 ? 0.0 : rng.uniform(0.2, 3.0));
    }
    chain.initial = random_simplex(n, rng);
    for (std::size_t s = 0; s < n; ++s) {
      chain.transition.push_back(random_simplex(n, rng));
    }
    chain.validate();
    chains.push_back(std::move(chain));
  }
  return chains;
}

/// Samples an aggregate observation trace from the chains plus noise.
std::vector<double> sample_aggregate(const std::vector<ApplianceChain>& chains,
                                     std::size_t t_max, double noise,
                                     Rng& rng) {
  std::vector<std::size_t> state(chains.size());
  for (std::size_t c = 0; c < chains.size(); ++c) {
    state[c] = rng.categorical(chains[c].initial);
  }
  std::vector<double> aggregate(t_max);
  for (std::size_t t = 0; t < t_max; ++t) {
    double total = 0.0;
    for (std::size_t c = 0; c < chains.size(); ++c) {
      total += chains[c].state_power[state[c]];
      state[c] = rng.categorical(chains[c].transition[state[c]]);
    }
    aggregate[t] = total + rng.normal(0.0, noise);
  }
  return aggregate;
}

TEST(FactorialHmm, FactoredMatchesNaiveOnRandomModels) {
  Rng rng(1234);
  for (int trial = 0; trial < 30; ++trial) {
    const auto num_chains = static_cast<std::size_t>(rng.uniform_int(1, 8));
    const auto chains = random_chains(num_chains, rng);
    // Trace lengths deliberately include the degenerate T=1 decode.
    const auto t_max = trial < 3
                           ? static_cast<std::size_t>(trial + 1)
                           : static_cast<std::size_t>(rng.uniform_int(2, 60));
    const double noise = rng.uniform(0.05, 0.4);
    const auto aggregate = sample_aggregate(chains, t_max, noise, rng);

    FactorialHmm fhmm(chains, noise);
    FhmmDecodeOptions naive;
    naive.algorithm = FhmmDecodeAlgorithm::kNaiveJoint;
    const auto reference = fhmm.decode(aggregate, naive);
    const auto factored = fhmm.decode(aggregate);

    ASSERT_EQ(factored.joint_path, reference.joint_path)
        << "trial " << trial << " (" << chains.size() << " chains, K="
        << fhmm.joint_state_count() << ", T=" << t_max << ")";
    EXPECT_EQ(factored.appliance_power, reference.appliance_power);
    EXPECT_NEAR(factored.log_likelihood, reference.log_likelihood,
                1e-6 * (1.0 + std::fabs(reference.log_likelihood)));
  }
}

TEST(FactorialHmm, TieBreaksTowardLowestJointStateLikeNaive) {
  // Two 2-state chains with *uniform* transitions and initials: every
  // per-chain log term is the same constant, so candidate scores differ
  // only via delta, which both decoders compute identically — score ties
  // are exact. Powers make joints (0,1)=id 1 and (1,0)=id 2 tie exactly
  // under obs=1.0; both decoders must resolve to id 1 (first-index wins).
  ApplianceChain a;
  a.name = "a";
  a.state_power = {0.0, 1.0};
  a.initial = {0.5, 0.5};
  a.transition = {{0.5, 0.5}, {0.5, 0.5}};
  auto b = a;
  b.name = "b";
  const std::vector<ApplianceChain> chains = {a, b};
  const std::vector<double> aggregate = {1.0, 1.0, 0.0};

  FactorialHmm fhmm(chains, 0.1);
  FhmmDecodeOptions naive;
  naive.algorithm = FhmmDecodeAlgorithm::kNaiveJoint;
  const auto reference = fhmm.decode(aggregate, naive);
  const auto factored = fhmm.decode(aggregate);

  ASSERT_EQ(factored.joint_path, reference.joint_path);
  for (std::size_t t = 0; t < 2; ++t) {
    EXPECT_EQ(factored.joint_path[t], 1u) << "t=" << t;  // (a=0, b=1)
  }
  EXPECT_EQ(factored.joint_path[2], 0u);
}

TEST(FactorialHmm, BeamAtFullWidthMatchesExactDecode) {
  Rng rng(77);
  const auto chains = random_chains(4, rng);
  const auto aggregate = sample_aggregate(chains, 40, 0.1, rng);
  FactorialHmm fhmm(chains, 0.1);

  const auto exact = fhmm.decode(aggregate);
  for (const std::size_t beam :
       {fhmm.joint_state_count(), fhmm.joint_state_count() + 100}) {
    FhmmDecodeOptions options;
    options.beam_width = beam;
    const auto beamed = fhmm.decode(aggregate, options);
    EXPECT_EQ(beamed.joint_path, exact.joint_path) << "beam=" << beam;
    EXPECT_EQ(beamed.log_likelihood, exact.log_likelihood);
  }
}

TEST(FactorialHmm, NarrowBeamStillDecodesAndAgreesAcrossAlgorithms) {
  Rng rng(78);
  const auto chains = random_chains(3, rng);
  const auto aggregate = sample_aggregate(chains, 30, 0.1, rng);
  FactorialHmm fhmm(chains, 0.1);

  FhmmDecodeOptions beamed;
  beamed.beam_width = 4;
  const auto factored = fhmm.decode(aggregate, beamed);
  ASSERT_EQ(factored.joint_path.size(), aggregate.size());
  EXPECT_TRUE(std::isfinite(factored.log_likelihood));

  // The beam prunes on delta values both algorithms compute identically at
  // t=0; on this short trace the surviving frontier stays aligned, so the
  // naive decoder under the same beam returns the same path.
  beamed.algorithm = FhmmDecodeAlgorithm::kNaiveJoint;
  const auto naive = fhmm.decode(aggregate, beamed);
  EXPECT_EQ(factored.joint_path, naive.joint_path);
}

TEST(LearnChain, DiscoversPowerLevels) {
  Rng rng(8);
  std::vector<double> trace;
  for (int cycle = 0; cycle < 30; ++cycle) {
    for (int t = 0; t < 10; ++t) trace.push_back(rng.normal(0.0, 0.01));
    for (int t = 0; t < 6; ++t) trace.push_back(rng.normal(2.0, 0.02));
  }
  const auto chain = learn_chain("test", trace, 2, rng);
  ASSERT_EQ(chain.num_states(), 2u);
  EXPECT_NEAR(chain.state_power[0], 0.0, 0.1);
  EXPECT_NEAR(chain.state_power[1], 2.0, 0.1);
  // Sticky dynamics: staying is more likely than switching.
  EXPECT_GT(chain.transition[0][0], chain.transition[0][1]);
  EXPECT_GT(chain.transition[1][1], chain.transition[1][0]);
}

TEST(LearnChain, StatePowersAreSorted) {
  Rng rng(9);
  std::vector<double> trace;
  for (int i = 0; i < 300; ++i) {
    trace.push_back((i / 10) % 3 == 0 ? 5.0 : ((i / 10) % 3 == 1 ? 0.0 : 2.0));
  }
  const auto chain = learn_chain("three-level", trace, 3, rng);
  for (std::size_t s = 1; s < chain.num_states(); ++s) {
    EXPECT_LE(chain.state_power[s - 1], chain.state_power[s]);
  }
}

class FhmmNoise : public ::testing::TestWithParam<double> {};

TEST_P(FhmmNoise, DecodingDegradesGracefully) {
  Rng rng(10);
  const auto chains = two_chains();
  const int n = 200;
  std::vector<double> aggregate(n);
  std::vector<std::size_t> state = {0, 0};
  for (int t = 0; t < n; ++t) {
    double total = 0.0;
    for (std::size_t c = 0; c < 2; ++c) {
      total += chains[c].state_power[state[c]];
      state[c] = rng.categorical(chains[c].transition[state[c]]);
    }
    aggregate[static_cast<std::size_t>(t)] =
        total + rng.normal(0.0, GetParam());
  }
  FactorialHmm fhmm(chains, std::max(0.05, GetParam()));
  const auto decoding = fhmm.decode(aggregate);
  EXPECT_EQ(decoding.appliance_power[0].size(), static_cast<std::size_t>(n));
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, FhmmNoise,
                         ::testing::Values(0.01, 0.1, 0.3, 0.6));

}  // namespace
}  // namespace pmiot::ml
