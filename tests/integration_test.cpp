// Cross-module integration tests: each exercises a full paper pipeline
// end-to-end, the way the examples and benches compose the libraries.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/privacy.h"
#include "defense/chpr.h"
#include "ml/random_forest.h"
#include "net/capture.h"
#include "net/fingerprint.h"
#include "net/gateway.h"
#include "niom/detector.h"
#include "niom/evaluate.h"
#include "solar/sundance.h"
#include "solar/sunspot.h"
#include "synth/solar_gen.h"
#include "timeseries/trace_io.h"
#include "zkp/meter.h"

namespace pmiot {
namespace {

TEST(Integration, HomeChprNiomPipeline) {
  // Simulate -> defend -> attack, with the trace round-tripped through the
  // CSV interchange format in the middle (as a user workflow would).
  auto config = synth::home_b();
  std::vector<synth::ApplianceSpec> appliances;
  for (const auto& spec : config.appliances) {
    if (spec.name != "water_heater") appliances.push_back(spec);
  }
  config.appliances = appliances;
  Rng rng(101);
  const auto home = synth::simulate_home(config, CivilDate{2017, 6, 5}, 7, rng);

  const auto draws = defense::simulate_hot_water_draws(home.occupancy, rng);
  const auto chpr =
      defense::apply_chpr(home.aggregate, draws, defense::ChprOptions{}, rng);

  std::ostringstream os;
  ts::write_csv(os, chpr.masked, 9);
  std::istringstream is(os.str());
  const auto reloaded = ts::read_csv(is);

  niom::ThresholdNiom attack;
  const auto raw = niom::evaluate(attack, home.aggregate, home.occupancy,
                                  niom::waking_hours());
  const auto masked =
      niom::evaluate(attack, reloaded, home.occupancy, niom::waking_hours());
  EXPECT_LT(masked.mcc, raw.mcc * 0.6);
  EXPECT_EQ(chpr.comfort_violation_minutes, 0);
}

TEST(Integration, SolarNetMeterRecoveryPipeline) {
  // Generation + consumption -> net meter -> SunSpot localization ->
  // weather lookup at the estimate -> SunDance -> NIOM on the recovery.
  const CivilDate start{2017, 5, 1};
  const synth::WeatherField weather(synth::WeatherOptions{}, start, 30, 99);
  const synth::SolarSite site{"it", {40.0, -88.0}, 6.0, 0.85, 1.0, 0.01};
  Rng rng(102);
  const auto generation =
      synth::simulate_solar(site, weather, start, 30, rng);
  const auto home = synth::simulate_home(synth::home_b(), start, 30, rng);
  auto net = home.aggregate;
  net -= generation;

  // Localize from the gross feed (the vendor's own data), then use the
  // estimate to fetch weather and disaggregate the utility's net data.
  const auto located = solar::sunspot_localize(generation);
  EXPECT_LT(geo::haversine_km(located.estimate, site.location), 150.0);
  const auto clouds = weather.cloud_series(located.estimate);
  const auto recovered =
      solar::sundance_disaggregate(net, located.estimate, clouds);

  niom::ThresholdNiom attack;
  const auto on_recovered =
      niom::evaluate(attack, recovered.consumption_estimate, home.occupancy,
                     niom::waking_hours());
  auto clamped = net;
  clamped.clamp_min(0.0);
  const auto on_net = niom::evaluate(attack, clamped, home.occupancy,
                                     niom::waking_hours());
  EXPECT_GT(on_recovered.mcc, on_net.mcc);
}

TEST(Integration, CaptureReplayGatewayPipeline) {
  // Simulate a LAN, persist the capture, reload it, and run the gateway on
  // the replay — decisions must match the live run.
  Rng rng(103);
  net::FingerprintOptions options;
  options.instances_per_type = 2;
  options.duration_s = 3600.0;
  auto data = net::build_fingerprint_dataset(options, rng);
  ml::RandomForest classifier;
  classifier.fit(data);
  net::AnomalyDetector detector;
  detector.fit(data);

  Rng home_rng(104);
  auto home = net::simulate_home_network(1, 3600.0, home_rng);
  auto infected = home.devices[0];
  infected.infection = net::Infection::kScanner;
  infected.infection_start_s = 600.0;
  const auto extra = net::simulate_device(infected, 3600.0, home_rng);
  home.packets.insert(home.packets.end(), extra.begin(), extra.end());
  net::sort_by_time(home.packets);

  std::ostringstream os;
  net::write_capture(os, home.packets);
  std::istringstream is(os.str());
  const auto replay = net::read_capture(is);

  net::SmartGateway gateway(classifier, detector, net::GatewayOptions{});
  for (const auto& device : home.devices) {
    gateway.register_device(device.ip, device.name);
  }
  const auto live = gateway.process(home.packets, 3600.0);
  const auto replayed = gateway.process(replay, 3600.0);

  ASSERT_EQ(live.verdicts.size(), replayed.verdicts.size());
  for (std::size_t i = 0; i < live.verdicts.size(); ++i) {
    EXPECT_EQ(live.verdicts[i].final_zone, replayed.verdicts[i].final_zone);
    EXPECT_EQ(live.verdicts[i].predicted_type,
              replayed.verdicts[i].predicted_type);
  }
  // The scanner got quarantined in both.
  EXPECT_EQ(live.verdicts[0].final_zone, net::Zone::kQuarantined);
}

TEST(Integration, SimulatedHomeToPrivateBill) {
  // Meter a simulated home through the ZKP meter and verify the bill the
  // utility computes matches plain arithmetic on the true readings.
  Rng rng(105);
  const auto home =
      synth::simulate_home(synth::home_a(), CivilDate{2017, 6, 1}, 7, rng);
  const auto hourly = home.aggregate.resample(3600);

  const auto params = zkp::GroupParams::generate(40, 9);
  zkp::PrivateMeter meter(params, 10);
  std::uint64_t expected_bill = 0;
  const auto prices = zkp::time_of_use_prices(hourly.size(), 3600, 12, 30);
  for (std::size_t h = 0; h < hourly.size(); ++h) {
    const auto wh = static_cast<zkp::u64>(hourly[h] * 1000.0);
    meter.record(wh);
    expected_bill += prices[h] * wh;
  }
  const auto response = meter.bill_response(prices);
  EXPECT_EQ(response.bill, expected_bill);
  EXPECT_TRUE(
      zkp::verify_bill(params, meter.commitments(), prices, response));
}

TEST(Integration, KnobFrontierIsReproducible) {
  // The privacy evaluator must be deterministic given seeds — frontier
  // points from two identical runs agree exactly.
  Rng rng(106);
  const auto home =
      synth::simulate_home(synth::home_a(), CivilDate{2017, 6, 5}, 5, rng);
  const auto evaluator = core::PrivacyEvaluator::standard();
  core::NoiseDefense defense;
  const std::vector<double> intensities{0.0, 0.5, 1.0};
  Rng r1(7), r2(7);
  const auto a = evaluator.sweep(defense, home, intensities, r1);
  const auto b = evaluator.sweep(defense, home, intensities, r2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].billing_error, b[i].billing_error);
    for (const auto& [name, value] : a[i].leakage) {
      EXPECT_DOUBLE_EQ(value, b[i].leakage.at(name));
    }
  }
}

}  // namespace
}  // namespace pmiot
