// pmiot_lint core tests: every rule must fire on a fixture containing its
// banned pattern, stay quiet on the clean variant, honour allow(...)
// suppressions, and report stale or unknown suppressions. Fixtures are
// embedded strings, so these tests never depend on the repo checkout.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "pmiot_lint/lint.h"

namespace {

using pmiot::lint::Diagnostic;
using pmiot::lint::lint_source;

std::vector<std::string> rules_of(const std::string& path,
                                  const std::string& source) {
  std::vector<std::string> rules;
  for (const auto& diagnostic : lint_source(path, source)) {
    rules.push_back(diagnostic.rule);
  }
  return rules;
}

TEST(Lint, CleanSourceHasNoFindings) {
  const std::string source = R"cpp(
    #include <cstdint>
    #include <vector>
    namespace pmiot {
    int add(int a, int b) { return a + b; }
    }  // namespace pmiot
  )cpp";
  EXPECT_TRUE(rules_of("src/common/add.cpp", source).empty());
}

TEST(Lint, FlagsRawRand) {
  EXPECT_EQ(rules_of("src/a.cpp", "int x = rand();"),
            std::vector<std::string>{"raw-rand"});
  EXPECT_EQ(rules_of("src/a.cpp", "srand(42);"),
            std::vector<std::string>{"raw-rand"});
  EXPECT_EQ(rules_of("src/a.cpp", "std::random_device rd;"),
            std::vector<std::string>{"raw-rand"});
  // `rand` as part of a longer identifier is not a hit.
  EXPECT_TRUE(rules_of("src/a.cpp", "int operand = 3; grand(operand);")
                  .empty());
  // ...and neither is the word in a comment or a string literal.
  EXPECT_TRUE(rules_of("src/a.cpp", "// call rand() here?\n").empty());
  EXPECT_TRUE(
      rules_of("src/a.cpp", "const char* s = \"rand()\";").empty());
}

TEST(Lint, FlagsWallClock) {
  EXPECT_EQ(rules_of("src/a.cpp", "auto t = time(nullptr);"),
            std::vector<std::string>{"wall-clock"});
  EXPECT_EQ(rules_of("src/a.cpp", "auto t = std::time(NULL);"),
            std::vector<std::string>{"wall-clock"});
  EXPECT_EQ(rules_of("bench/b.cpp",
                     "auto t = std::chrono::system_clock::now();"),
            std::vector<std::string>{"wall-clock"});
  // A named timestamp function of the same suffix is fine.
  EXPECT_TRUE(rules_of("src/a.cpp", "double t = packet_time(3);").empty());
  // time() with a real argument is not the wall-clock pattern.
  EXPECT_TRUE(rules_of("src/a.cpp", "auto t = time(&buffer);").empty());
}

TEST(Lint, FlagsSteadyClockOnlyUnderSrc) {
  const std::string source =
      "auto t0 = std::chrono::steady_clock::now();";
  EXPECT_EQ(rules_of("src/ml/a.cpp", source),
            std::vector<std::string>{"src-timing"});
  // Timing harnesses in bench/ and tests/ are the legitimate home.
  EXPECT_TRUE(rules_of("bench/a.cpp", source).empty());
  EXPECT_TRUE(rules_of("tests/a.cpp", source).empty());
}

TEST(Lint, ObsCarveOutAllowsClocksUnderSrcObsOnly) {
  // src/obs/ owns timer spans that are excluded from the determinism
  // contract, so both timing rules stand down there — and only there.
  const std::string steady = "auto t0 = std::chrono::steady_clock::now();";
  const std::string wall = "auto t = std::chrono::system_clock::now();";
  EXPECT_TRUE(rules_of("src/obs/scoped_timer.h", steady).empty());
  EXPECT_TRUE(rules_of("src/obs/metrics.cpp", wall).empty());
  EXPECT_TRUE(rules_of("src/obs/metrics.cpp", "auto t = time(nullptr);")
                  .empty());

  // The same fixtures still fire everywhere else under src/.
  EXPECT_EQ(rules_of("src/ml/a.cpp", steady),
            std::vector<std::string>{"src-timing"});
  EXPECT_EQ(rules_of("src/net/a.cpp", wall),
            std::vector<std::string>{"wall-clock"});
  EXPECT_EQ(rules_of("src/common/parallel.cpp", wall),
            std::vector<std::string>{"wall-clock"});

  // Only the src/obs/ directory matches — not lookalike prefixes.
  EXPECT_EQ(rules_of("src/observability/a.cpp", steady),
            std::vector<std::string>{"src-timing"});

  // The carve-out is strictly scoped to the timing rules: ambient
  // randomness is still banned in src/obs/.
  EXPECT_EQ(rules_of("src/obs/metrics.cpp", "int x = rand();"),
            std::vector<std::string>{"raw-rand"});
}

TEST(Lint, FlagsUnseededRngInParallelFor) {
  const std::string bad = R"cpp(
    par::parallel_for(0, n, [&](std::size_t i) {
      Rng rng(42);
      out[i] = rng.uniform();
    });
  )cpp";
  EXPECT_EQ(rules_of("src/a.cpp", bad),
            std::vector<std::string>{"par-rng-seed"});

  const std::string shard_seeded = R"cpp(
    par::parallel_for(0, n, [&](std::size_t i) {
      Rng rng(par::shard_seed(base, i));
      out[i] = rng.uniform();
    });
  )cpp";
  EXPECT_TRUE(rules_of("src/a.cpp", shard_seeded).empty());

  // Pre-drawn per-shard seeds (the random_forest pattern) also count.
  const std::string predrawn = R"cpp(
    par::parallel_for(0, n, [&](std::size_t i) {
      Rng rng(seeds[i]);
      out[i] = rng.uniform();
    });
  )cpp";
  EXPECT_TRUE(rules_of("src/a.cpp", predrawn).empty());

  // Outside any parallel region an unseeded-looking Rng is fine.
  EXPECT_TRUE(rules_of("src/a.cpp", "Rng rng(42);").empty());
}

TEST(Lint, FlagsNestedParallelFor) {
  const std::string bad = R"cpp(
    par::parallel_for(0, n, [&](std::size_t i) {
      par::parallel_for(0, m, [&](std::size_t j) { use(i, j); });
    });
  )cpp";
  EXPECT_EQ(rules_of("src/a.cpp", bad),
            std::vector<std::string>{"nested-par"});

  const std::string sequential = R"cpp(
    par::parallel_for(0, n, [&](std::size_t i) { use(i); });
    par::parallel_for(0, m, [&](std::size_t j) { use(j); });
  )cpp";
  EXPECT_TRUE(rules_of("src/a.cpp", sequential).empty());
}

TEST(Lint, FlagsUnorderedIteration) {
  const std::string range_for = R"cpp(
    std::unordered_map<int, double> totals;
    for (const auto& [k, v] : totals) emit(k, v);
  )cpp";
  EXPECT_EQ(rules_of("src/a.cpp", range_for),
            std::vector<std::string>{"unordered-iter"});

  const std::string begin_walk = R"cpp(
    std::unordered_set<int> seen;
    auto it = seen.begin();
  )cpp";
  EXPECT_EQ(rules_of("src/a.cpp", begin_walk),
            std::vector<std::string>{"unordered-iter"});

  // Point lookups and membership tests are exactly what the container is
  // for — only traversal is order-sensitive.
  const std::string lookups = R"cpp(
    std::unordered_map<int, double> totals;
    totals[3] = 1.0;
    if (totals.find(4) != totals.end()) totals.erase(4);
  )cpp";
  EXPECT_TRUE(rules_of("src/a.cpp", lookups).empty());

  // Iterating an ordered container with a similar name is fine.
  const std::string ordered = R"cpp(
    std::map<int, double> totals;
    for (const auto& [k, v] : totals) emit(k, v);
  )cpp";
  EXPECT_TRUE(rules_of("src/a.cpp", ordered).empty());
}

TEST(Lint, FlagsAtomicFloat) {
  EXPECT_EQ(rules_of("src/a.cpp", "std::atomic<double> sum{0.0};"),
            std::vector<std::string>{"atomic-float"});
  EXPECT_EQ(rules_of("src/a.cpp", "std::atomic<float> sum{0.f};"),
            std::vector<std::string>{"atomic-float"});
  EXPECT_TRUE(
      rules_of("src/a.cpp", "std::atomic<std::size_t> hits{0};").empty());
}

TEST(Lint, FlagsMissingIncludeInHeader) {
  const std::string bad = R"cpp(
    #pragma once
    #include <string>
    std::vector<int> numbers();
  )cpp";
  const auto diagnostics = lint_source("src/a.h", bad);
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "include-hygiene");
  EXPECT_NE(diagnostics[0].message.find("<vector>"), std::string::npos);

  const std::string good = R"cpp(
    #pragma once
    #include <string>
    #include <vector>
    std::vector<std::string> names();
  )cpp";
  EXPECT_TRUE(rules_of("src/a.h", good).empty());

  // Implementation files may lean on their headers' includes.
  EXPECT_TRUE(rules_of("src/a.cpp", bad).empty());
}

TEST(Lint, FlagsUnguardedSimd) {
  EXPECT_EQ(rules_of("src/a.cpp", "#include <immintrin.h>\n"),
            std::vector<std::string>{"simd-guard"});
  EXPECT_EQ(rules_of("src/a.cpp", "auto v = _mm256_setzero_pd();"),
            std::vector<std::string>{"simd-guard"});
  EXPECT_EQ(rules_of("src/a.cpp", "__m128d lanes;"),
            std::vector<std::string>{"simd-guard"});
  EXPECT_EQ(rules_of("src/a.cpp", "#pragma omp simd\n"),
            std::vector<std::string>{"simd-guard"});
  EXPECT_EQ(rules_of("src/a.cpp", "#pragma GCC ivdep\n"),
            std::vector<std::string>{"simd-guard"});
  // Intrinsic names in comments or strings are not code.
  EXPECT_TRUE(rules_of("src/a.cpp", "// prefer _mm256_fmadd_pd here\n")
                  .empty());
  EXPECT_TRUE(
      rules_of("src/a.cpp", "const char* s = \"_mm256_add_pd\";").empty());
}

TEST(Lint, SimdGuardedRegionsAreAllowed) {
  // The shape src/simd/simd.cpp uses: an outer option check defining a
  // derived symbol, then regions behind the derived symbol.
  const std::string source = R"cpp(
#if defined(PMIOT_SIMD) && defined(__x86_64__)
#define PMIOT_SIMD_AVX2 1
#endif
#ifdef PMIOT_SIMD_AVX2
#include <immintrin.h>
__m256d load(const double* p) { return _mm256_loadu_pd(p); }
#endif
)cpp";
  EXPECT_TRUE(rules_of("src/simd/x.cpp", source).empty());
}

TEST(Lint, SimdGuardElseBranchIsNotGuarded) {
  // The #else of a PMIOT_SIMD conditional is the scalar side; intrinsics
  // there defeat the point of the guard.
  const std::string else_side =
      "#ifdef PMIOT_SIMD\n"
      "int a;\n"
      "#else\n"
      "auto v = _mm256_setzero_pd();\n"
      "#endif\n";
  EXPECT_EQ(rules_of("src/a.cpp", else_side),
            std::vector<std::string>{"simd-guard"});
  // #ifndef inverts: the else branch is the guarded one.
  const std::string ifndef_else =
      "#ifndef PMIOT_SIMD\n"
      "int a;\n"
      "#else\n"
      "auto v = _mm256_setzero_pd();\n"
      "#endif\n";
  EXPECT_TRUE(rules_of("src/a.cpp", ifndef_else).empty());
  // An unrelated guard does not count.
  const std::string wrong_guard =
      "#ifdef SOME_OTHER_FLAG\n"
      "auto v = _mm256_setzero_pd();\n"
      "#endif\n";
  EXPECT_EQ(rules_of("src/a.cpp", wrong_guard),
            std::vector<std::string>{"simd-guard"});
}

TEST(Lint, SimdGuardSuppressibleWithAllow) {
  const std::string source =
      "auto v = _mm256_setzero_pd();  // pmiot-lint" ": allow(simd-guard)\n";
  EXPECT_TRUE(rules_of("src/a.cpp", source).empty());
}

TEST(Lint, DiagnosticCarriesFileLineAndCompilerShape) {
  const auto diagnostics =
      lint_source("src/x.cpp", "int a;\nint b = rand();\n");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].file, "src/x.cpp");
  EXPECT_EQ(diagnostics[0].line, 2u);
  const std::string text = pmiot::lint::to_string(diagnostics[0]);
  EXPECT_EQ(text.rfind("src/x.cpp:2: error: [raw-rand]", 0), 0u);
}

// --- suppression handling (satellite: suppressed passes, unsuppressed
// fails, stale suppression is itself reported) ---

TEST(Lint, SameLineSuppressionSilencesViolation) {
  const std::string source =
      "int x = rand();  // justified: legacy fixture. "
      "pmiot-lint" ": allow(raw-rand)\n";
  EXPECT_TRUE(rules_of("src/a.cpp", source).empty());
}

TEST(Lint, PrecedingCommentLineSuppressionSilencesViolation) {
  const std::string source =
      "// seed folded into fixture data. pmiot-lint" ": allow(raw-rand)\n"
      "int x = rand();\n";
  EXPECT_TRUE(rules_of("src/a.cpp", source).empty());
}

TEST(Lint, SuppressionIsRuleSpecific) {
  // An allow for a different rule does not silence the violation, and the
  // unused grant is reported as stale: two findings total.
  const std::string source =
      "int x = rand();  // pmiot-lint" ": allow(wall-clock)\n";
  const auto rules = rules_of("src/a.cpp", source);
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0], "raw-rand");
  EXPECT_EQ(rules[1], "stale-suppression");
}

TEST(Lint, StaleSuppressionIsReported) {
  const std::string source =
      "int x = 3;  // pmiot-lint" ": allow(raw-rand)\n";
  const auto diagnostics = lint_source("src/a.cpp", source);
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "stale-suppression");
  EXPECT_EQ(diagnostics[0].line, 1u);
}

TEST(Lint, MultiRuleAllowSuppressesBothAndStalenessIsPerRule) {
  const std::string both =
      "auto t = time(nullptr) + rand();  "
      "// pmiot-lint" ": allow(raw-rand, wall-clock)\n";
  EXPECT_TRUE(rules_of("src/a.cpp", both).empty());

  const std::string half =
      "int x = rand();  // pmiot-lint" ": allow(raw-rand, wall-clock)\n";
  EXPECT_EQ(rules_of("src/a.cpp", half),
            std::vector<std::string>{"stale-suppression"});
}

TEST(Lint, UnknownRuleInAllowIsReported) {
  const std::string source =
      "int x = 3;  // pmiot-lint" ": allow(no-such-rule)\n";
  const auto diagnostics = lint_source("src/a.cpp", source);
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "unknown-rule");
}

TEST(Lint, EveryRuleHasADescription) {
  for (const auto& rule : pmiot::lint::rule_names()) {
    EXPECT_FALSE(pmiot::lint::describe_rule(rule).empty()) << rule;
  }
  EXPECT_TRUE(pmiot::lint::describe_rule("no-such-rule").empty());
}

}  // namespace
