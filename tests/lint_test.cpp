// pmiot_lint core tests: every rule must fire on a fixture containing its
// banned pattern, stay quiet on the clean variant, honour allow(...)
// suppressions, and report stale or unknown suppressions. Fixtures are
// embedded strings, so these tests never depend on the repo checkout.
#include <cctype>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "pmiot_lint/index.h"
#include "pmiot_lint/lint.h"
#include "pmiot_lint/report.h"
#include "pmiot_lint/token.h"

namespace {

using pmiot::lint::Analyzer;
using pmiot::lint::Diagnostic;
using pmiot::lint::index_file;
using pmiot::lint::lint_source;
using pmiot::lint::scan_text;
using pmiot::lint::ScanResult;
using pmiot::lint::Token;
using pmiot::lint::TokenKind;

std::vector<std::string> rules_of(const std::string& path,
                                  const std::string& source) {
  std::vector<std::string> rules;
  for (const auto& diagnostic : lint_source(path, source)) {
    rules.push_back(diagnostic.rule);
  }
  return rules;
}

/// Lints a multi-file fixture project and returns the rule names fired.
std::vector<std::string> rules_of_project(
    const std::vector<std::pair<std::string, std::string>>& files) {
  Analyzer analyzer;
  for (const auto& [path, content] : files) analyzer.add_file(path, content);
  std::vector<std::string> rules;
  for (const auto& diagnostic : analyzer.run()) {
    rules.push_back(diagnostic.rule);
  }
  return rules;
}

bool has_ident(const ScanResult& scan, const std::string& name) {
  for (const Token& token : scan.tokens) {
    if (token.kind == TokenKind::kIdentifier && token.text == name) {
      return true;
    }
  }
  return false;
}

TEST(Lint, CleanSourceHasNoFindings) {
  const std::string source = R"cpp(
    #include <cstdint>
    #include <vector>
    namespace pmiot {
    int add(int a, int b) { return a + b; }
    }  // namespace pmiot
  )cpp";
  EXPECT_TRUE(rules_of("src/common/add.cpp", source).empty());
}

TEST(Lint, FlagsRawRand) {
  EXPECT_EQ(rules_of("src/a.cpp", "int x = rand();"),
            std::vector<std::string>{"raw-rand"});
  EXPECT_EQ(rules_of("src/a.cpp", "srand(42);"),
            std::vector<std::string>{"raw-rand"});
  EXPECT_EQ(rules_of("src/a.cpp", "std::random_device rd;"),
            std::vector<std::string>{"raw-rand"});
  // `rand` as part of a longer identifier is not a hit.
  EXPECT_TRUE(rules_of("src/a.cpp", "int operand = 3; grand(operand);")
                  .empty());
  // ...and neither is the word in a comment or a string literal.
  EXPECT_TRUE(rules_of("src/a.cpp", "// call rand() here?\n").empty());
  EXPECT_TRUE(
      rules_of("src/a.cpp", "const char* s = \"rand()\";").empty());
}

TEST(Lint, FlagsWallClock) {
  EXPECT_EQ(rules_of("src/a.cpp", "auto t = time(nullptr);"),
            std::vector<std::string>{"wall-clock"});
  EXPECT_EQ(rules_of("src/a.cpp", "auto t = std::time(NULL);"),
            std::vector<std::string>{"wall-clock"});
  EXPECT_EQ(rules_of("bench/b.cpp",
                     "auto t = std::chrono::system_clock::now();"),
            std::vector<std::string>{"wall-clock"});
  // A named timestamp function of the same suffix is fine.
  EXPECT_TRUE(rules_of("src/a.cpp", "double t = packet_time(3);").empty());
  // time() with a real argument is not the wall-clock pattern.
  EXPECT_TRUE(rules_of("src/a.cpp", "auto t = time(&buffer);").empty());
}

TEST(Lint, FlagsSteadyClockOnlyUnderSrc) {
  const std::string source =
      "auto t0 = std::chrono::steady_clock::now();";
  EXPECT_EQ(rules_of("src/ml/a.cpp", source),
            std::vector<std::string>{"src-timing"});
  // Timing harnesses in bench/ and tests/ are the legitimate home.
  EXPECT_TRUE(rules_of("bench/a.cpp", source).empty());
  EXPECT_TRUE(rules_of("tests/a.cpp", source).empty());
}

TEST(Lint, ObsCarveOutAllowsClocksUnderSrcObsOnly) {
  // src/obs/ owns timer spans that are excluded from the determinism
  // contract, so both timing rules stand down there — and only there.
  const std::string steady = "auto t0 = std::chrono::steady_clock::now();";
  const std::string wall = "auto t = std::chrono::system_clock::now();";
  EXPECT_TRUE(rules_of("src/obs/scoped_timer.h", steady).empty());
  EXPECT_TRUE(rules_of("src/obs/metrics.cpp", wall).empty());
  EXPECT_TRUE(rules_of("src/obs/metrics.cpp", "auto t = time(nullptr);")
                  .empty());

  // The same fixtures still fire everywhere else under src/.
  EXPECT_EQ(rules_of("src/ml/a.cpp", steady),
            std::vector<std::string>{"src-timing"});
  EXPECT_EQ(rules_of("src/net/a.cpp", wall),
            std::vector<std::string>{"wall-clock"});
  EXPECT_EQ(rules_of("src/common/parallel.cpp", wall),
            std::vector<std::string>{"wall-clock"});

  // Only the src/obs/ directory matches — not lookalike prefixes.
  EXPECT_EQ(rules_of("src/observability/a.cpp", steady),
            std::vector<std::string>{"src-timing"});

  // The carve-out is strictly scoped to the timing rules: ambient
  // randomness is still banned in src/obs/.
  EXPECT_EQ(rules_of("src/obs/metrics.cpp", "int x = rand();"),
            std::vector<std::string>{"raw-rand"});
}

TEST(Lint, FlagsUnseededRngInParallelFor) {
  const std::string bad = R"cpp(
    par::parallel_for(0, n, [&](std::size_t i) {
      Rng rng(42);
      out[i] = rng.uniform();
    });
  )cpp";
  EXPECT_EQ(rules_of("src/a.cpp", bad),
            std::vector<std::string>{"par-rng-seed"});

  const std::string shard_seeded = R"cpp(
    par::parallel_for(0, n, [&](std::size_t i) {
      Rng rng(par::shard_seed(base, i));
      out[i] = rng.uniform();
    });
  )cpp";
  EXPECT_TRUE(rules_of("src/a.cpp", shard_seeded).empty());

  // Pre-drawn per-shard seeds (the random_forest pattern) also count.
  const std::string predrawn = R"cpp(
    par::parallel_for(0, n, [&](std::size_t i) {
      Rng rng(seeds[i]);
      out[i] = rng.uniform();
    });
  )cpp";
  EXPECT_TRUE(rules_of("src/a.cpp", predrawn).empty());

  // Outside any parallel region an unseeded-looking Rng is fine.
  EXPECT_TRUE(rules_of("src/a.cpp", "Rng rng(42);").empty());
}

TEST(Lint, FlagsNestedParallelFor) {
  const std::string bad = R"cpp(
    par::parallel_for(0, n, [&](std::size_t i) {
      par::parallel_for(0, m, [&](std::size_t j) { use(i, j); });
    });
  )cpp";
  EXPECT_EQ(rules_of("src/a.cpp", bad),
            std::vector<std::string>{"nested-par"});

  const std::string sequential = R"cpp(
    par::parallel_for(0, n, [&](std::size_t i) { use(i); });
    par::parallel_for(0, m, [&](std::size_t j) { use(j); });
  )cpp";
  EXPECT_TRUE(rules_of("src/a.cpp", sequential).empty());
}

TEST(Lint, FlagsUnorderedIteration) {
  const std::string range_for = R"cpp(
    std::unordered_map<int, double> totals;
    for (const auto& [k, v] : totals) emit(k, v);
  )cpp";
  EXPECT_EQ(rules_of("src/a.cpp", range_for),
            std::vector<std::string>{"unordered-iter"});

  const std::string begin_walk = R"cpp(
    std::unordered_set<int> seen;
    auto it = seen.begin();
  )cpp";
  EXPECT_EQ(rules_of("src/a.cpp", begin_walk),
            std::vector<std::string>{"unordered-iter"});

  // Point lookups and membership tests are exactly what the container is
  // for — only traversal is order-sensitive.
  const std::string lookups = R"cpp(
    std::unordered_map<int, double> totals;
    totals[3] = 1.0;
    if (totals.find(4) != totals.end()) totals.erase(4);
  )cpp";
  EXPECT_TRUE(rules_of("src/a.cpp", lookups).empty());

  // Iterating an ordered container with a similar name is fine.
  const std::string ordered = R"cpp(
    std::map<int, double> totals;
    for (const auto& [k, v] : totals) emit(k, v);
  )cpp";
  EXPECT_TRUE(rules_of("src/a.cpp", ordered).empty());
}

TEST(Lint, FlagsAtomicFloat) {
  EXPECT_EQ(rules_of("src/a.cpp", "std::atomic<double> sum{0.0};"),
            std::vector<std::string>{"atomic-float"});
  EXPECT_EQ(rules_of("src/a.cpp", "std::atomic<float> sum{0.f};"),
            std::vector<std::string>{"atomic-float"});
  EXPECT_TRUE(
      rules_of("src/a.cpp", "std::atomic<std::size_t> hits{0};").empty());
}

TEST(Lint, FlagsMissingIncludeInHeader) {
  const std::string bad = R"cpp(
    #pragma once
    #include <string>
    std::vector<int> numbers();
  )cpp";
  const auto diagnostics = lint_source("src/a.h", bad);
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "include-hygiene");
  EXPECT_NE(diagnostics[0].message.find("<vector>"), std::string::npos);

  const std::string good = R"cpp(
    #pragma once
    #include <string>
    #include <vector>
    std::vector<std::string> names();
  )cpp";
  EXPECT_TRUE(rules_of("src/a.h", good).empty());

  // Implementation files may lean on their headers' includes.
  EXPECT_TRUE(rules_of("src/a.cpp", bad).empty());
}

TEST(Lint, FlagsUnguardedSimd) {
  EXPECT_EQ(rules_of("src/a.cpp", "#include <immintrin.h>\n"),
            std::vector<std::string>{"simd-guard"});
  EXPECT_EQ(rules_of("src/a.cpp", "auto v = _mm256_setzero_pd();"),
            std::vector<std::string>{"simd-guard"});
  EXPECT_EQ(rules_of("src/a.cpp", "__m128d lanes;"),
            std::vector<std::string>{"simd-guard"});
  EXPECT_EQ(rules_of("src/a.cpp", "#pragma omp simd\n"),
            std::vector<std::string>{"simd-guard"});
  EXPECT_EQ(rules_of("src/a.cpp", "#pragma GCC ivdep\n"),
            std::vector<std::string>{"simd-guard"});
  // Intrinsic names in comments or strings are not code.
  EXPECT_TRUE(rules_of("src/a.cpp", "// prefer _mm256_fmadd_pd here\n")
                  .empty());
  EXPECT_TRUE(
      rules_of("src/a.cpp", "const char* s = \"_mm256_add_pd\";").empty());
}

TEST(Lint, SimdGuardedRegionsAreAllowed) {
  // The shape src/simd/simd.cpp uses: an outer option check defining a
  // derived symbol, then regions behind the derived symbol.
  const std::string source = R"cpp(
#if defined(PMIOT_SIMD) && defined(__x86_64__)
#define PMIOT_SIMD_AVX2 1
#endif
#ifdef PMIOT_SIMD_AVX2
#include <immintrin.h>
__m256d load(const double* p) { return _mm256_loadu_pd(p); }
#endif
)cpp";
  EXPECT_TRUE(rules_of("src/simd/x.cpp", source).empty());
}

TEST(Lint, SimdGuardElseBranchIsNotGuarded) {
  // The #else of a PMIOT_SIMD conditional is the scalar side; intrinsics
  // there defeat the point of the guard.
  const std::string else_side =
      "#ifdef PMIOT_SIMD\n"
      "int a;\n"
      "#else\n"
      "auto v = _mm256_setzero_pd();\n"
      "#endif\n";
  EXPECT_EQ(rules_of("src/a.cpp", else_side),
            std::vector<std::string>{"simd-guard"});
  // #ifndef inverts: the else branch is the guarded one.
  const std::string ifndef_else =
      "#ifndef PMIOT_SIMD\n"
      "int a;\n"
      "#else\n"
      "auto v = _mm256_setzero_pd();\n"
      "#endif\n";
  EXPECT_TRUE(rules_of("src/a.cpp", ifndef_else).empty());
  // An unrelated guard does not count.
  const std::string wrong_guard =
      "#ifdef SOME_OTHER_FLAG\n"
      "auto v = _mm256_setzero_pd();\n"
      "#endif\n";
  EXPECT_EQ(rules_of("src/a.cpp", wrong_guard),
            std::vector<std::string>{"simd-guard"});
}

TEST(Lint, SimdGuardSuppressibleWithAllow) {
  const std::string source =
      "auto v = _mm256_setzero_pd();  // pmiot-lint" ": allow(simd-guard)\n";
  EXPECT_TRUE(rules_of("src/a.cpp", source).empty());
}

TEST(Lint, DiagnosticCarriesFileLineAndCompilerShape) {
  const auto diagnostics =
      lint_source("src/x.cpp", "int a;\nint b = rand();\n");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].file, "src/x.cpp");
  EXPECT_EQ(diagnostics[0].line, 2u);
  const std::string text = pmiot::lint::to_string(diagnostics[0]);
  EXPECT_EQ(text.rfind("src/x.cpp:2: error: [raw-rand]", 0), 0u);
}

// --- suppression handling (satellite: suppressed passes, unsuppressed
// fails, stale suppression is itself reported) ---

TEST(Lint, SameLineSuppressionSilencesViolation) {
  const std::string source =
      "int x = rand();  // justified: legacy fixture. "
      "pmiot-lint" ": allow(raw-rand)\n";
  EXPECT_TRUE(rules_of("src/a.cpp", source).empty());
}

TEST(Lint, PrecedingCommentLineSuppressionSilencesViolation) {
  const std::string source =
      "// seed folded into fixture data. pmiot-lint" ": allow(raw-rand)\n"
      "int x = rand();\n";
  EXPECT_TRUE(rules_of("src/a.cpp", source).empty());
}

TEST(Lint, SuppressionIsRuleSpecific) {
  // An allow for a different rule does not silence the violation, and the
  // unused grant is reported as stale: two findings total.
  const std::string source =
      "int x = rand();  // pmiot-lint" ": allow(wall-clock)\n";
  const auto rules = rules_of("src/a.cpp", source);
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0], "raw-rand");
  EXPECT_EQ(rules[1], "stale-suppression");
}

TEST(Lint, StaleSuppressionIsReported) {
  const std::string source =
      "int x = 3;  // pmiot-lint" ": allow(raw-rand)\n";
  const auto diagnostics = lint_source("src/a.cpp", source);
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "stale-suppression");
  EXPECT_EQ(diagnostics[0].line, 1u);
}

TEST(Lint, MultiRuleAllowSuppressesBothAndStalenessIsPerRule) {
  const std::string both =
      "auto t = time(nullptr) + rand();  "
      "// pmiot-lint" ": allow(raw-rand, wall-clock)\n";
  EXPECT_TRUE(rules_of("src/a.cpp", both).empty());

  const std::string half =
      "int x = rand();  // pmiot-lint" ": allow(raw-rand, wall-clock)\n";
  EXPECT_EQ(rules_of("src/a.cpp", half),
            std::vector<std::string>{"stale-suppression"});
}

TEST(Lint, UnknownRuleInAllowIsReported) {
  const std::string source =
      "int x = 3;  // pmiot-lint" ": allow(no-such-rule)\n";
  const auto diagnostics = lint_source("src/a.cpp", source);
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "unknown-rule");
}

TEST(Lint, EveryRuleHasADescription) {
  for (const auto& rule : pmiot::lint::rule_names()) {
    EXPECT_FALSE(pmiot::lint::describe_rule(rule).empty()) << rule;
  }
  EXPECT_TRUE(pmiot::lint::describe_rule("no-such-rule").empty());
}

// --- token scanner corner cases (PR 9 tentpole; each case pinned here is
// listed in token.h) ---

TEST(Lint, ScanBlanksMultiLineBlockComments) {
  const auto scan = scan_text(
      "int a;\n"
      "/* rand()\n"
      "   time(nullptr)\n"
      "*/\n"
      "int b;\n");
  EXPECT_TRUE(has_ident(scan, "a"));
  EXPECT_TRUE(has_ident(scan, "b"));
  EXPECT_FALSE(has_ident(scan, "rand"));
  EXPECT_FALSE(has_ident(scan, "time"));
  // The comment text stays addressable per line for directive parsing.
  EXPECT_NE(scan.comments[1].find("rand"), std::string::npos);
}

TEST(Lint, ScanSlashStarSlashDoesNotTerminateABlockComment) {
  // "/*/" is an *opening* delimiter plus one comment character; the old
  // close detector saw "*/" in it and dropped back to code too early.
  const auto scan = scan_text("/*/ rand() */ int x;\n");
  EXPECT_FALSE(has_ident(scan, "rand"));
  EXPECT_TRUE(has_ident(scan, "x"));
}

TEST(Lint, ScanBlanksRawStringsIncludingPrefixesAndDelimiters) {
  const auto scan = scan_text(
      "auto a = R\"(rand() inside)\";\n"
      "auto b = u8R\"(time(nullptr))\";\n"
      "auto c = LR\"x(srand(1) with )\" decoy)x\";\n"
      "int after;\n");
  EXPECT_FALSE(has_ident(scan, "rand"));
  EXPECT_FALSE(has_ident(scan, "time"));
  EXPECT_FALSE(has_ident(scan, "srand"));
  EXPECT_FALSE(has_ident(scan, "inside"));
  EXPECT_FALSE(has_ident(scan, "decoy"));  // `)"` != the )x" closer
  EXPECT_TRUE(has_ident(scan, "after"));
}

TEST(Lint, ScanEscapedQuotesDoNotEndStringLiterals) {
  const auto scan =
      scan_text("const char* s = \"say \\\"rand()\\\" now\"; int z;\n");
  EXPECT_FALSE(has_ident(scan, "rand"));
  EXPECT_FALSE(has_ident(scan, "now"));
  EXPECT_TRUE(has_ident(scan, "z"));
}

TEST(Lint, ScanDigitSeparatorsAreNotCharLiterals) {
  // 1'000'000 must not open a char literal — the old scanner's confusion
  // here let trailing comment text re-enter the code channel.
  const auto scan = scan_text(
      "int n = 1'000'000;  // then rand() maybe\n"
      "int m = 2;\n");
  EXPECT_TRUE(has_ident(scan, "n"));
  EXPECT_TRUE(has_ident(scan, "m"));
  EXPECT_FALSE(has_ident(scan, "rand"));
  EXPECT_NE(scan.comments[0].find("rand"), std::string::npos);
}

TEST(Lint, ScanBackslashContinuationExtendsLineComments) {
  // Phase-2 splicing joins the next physical line into the comment.
  const auto scan = scan_text(
      "// this comment continues \\\n"
      "int hidden = rand();\n"
      "int shown = 1;\n");
  EXPECT_FALSE(has_ident(scan, "hidden"));
  EXPECT_FALSE(has_ident(scan, "rand"));
  EXPECT_TRUE(has_ident(scan, "shown"));
}

TEST(Lint, ScanDirectiveContinuationsStayDirectives) {
  const auto scan = scan_text(
      "#define HELPER(x) \\\n"
      "  rand()\n"
      "int live = 1;\n");
  EXPECT_FALSE(has_ident(scan, "rand"));  // directive lines yield no tokens
  EXPECT_TRUE(has_ident(scan, "live"));
  ASSERT_GE(scan.directive_lines.size(), 2u);
  EXPECT_TRUE(scan.directive_lines[0]);
  EXPECT_TRUE(scan.directive_lines[1]);  // the continuation line
  EXPECT_TRUE(scan.line_has_code(1));    // directives anchor allow() lines
}

TEST(Lint, ScanIfZeroRegionsAreInvisible) {
  const auto scan = scan_text(
      "#if 0\n"
      "int dead = rand();\n"
      "#else\n"
      "int alive = 1;\n"
      "#endif\n"
      "#if false\n"
      "int also_dead = srand(7);\n"
      "#endif\n");
  EXPECT_FALSE(has_ident(scan, "dead"));
  EXPECT_FALSE(has_ident(scan, "rand"));
  EXPECT_FALSE(has_ident(scan, "also_dead"));
  EXPECT_TRUE(has_ident(scan, "alive"));
}

TEST(Lint, AllowGrantsInsideDisabledRegionsDoNotApply) {
  // Comments in `#if 0` are dropped with the code they excuse; the live
  // violation below the region must still fire.
  const std::string source =
      "#if 0\n"
      "// pmiot-lint" ": allow(raw-rand)\n"
      "#endif\n"
      "int x = rand();\n";
  EXPECT_EQ(rules_of("src/a.cpp", source),
            std::vector<std::string>{"raw-rand"});
}

// --- regression oracle: the pre-PR-9 scanner ---

/// A faithful miniature of the old line/string blanking state machine: no
/// digit-separator awareness, no preprocessor handling, no comment
/// continuation. The fixtures below keep a banned call visible through
/// *this* blanker (the old analyzer fired on them) while the real token
/// scanner stays silent.
std::string legacy_blank(const std::string& text) {
  enum class State { kCode, kLine, kBlock, kString, kChar };
  std::string code = text;
  State state = State::kCode;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') {
      if (state == State::kLine) state = State::kCode;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
          state = State::kLine;
          code[i] = ' ';
        } else if (c == '/' && i + 1 < text.size() && text[i + 1] == '*') {
          state = State::kBlock;
          code[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLine:
        code[i] = ' ';
        break;
      case State::kBlock:
        if (c == '/' && i > 0 && text[i - 1] == '*') state = State::kCode;
        code[i] = ' ';
        break;
      case State::kString:
        if (c == '\\') {
          code[i] = ' ';
          if (i + 1 < text.size()) code[++i] = ' ';
        } else if (c == '"') {
          state = State::kCode;
        } else {
          code[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          code[i] = ' ';
          if (i + 1 < text.size()) code[++i] = ' ';
        } else if (c == '\'') {
          state = State::kCode;
        } else {
          code[i] = ' ';
        }
        break;
    }
  }
  return code;
}

/// True when `word(` survives legacy blanking as an apparent call — the
/// trigger shape of the old banned-call rule.
bool legacy_sees_call(const std::string& text, const std::string& word) {
  const std::string code = legacy_blank(text);
  for (std::size_t pos = code.find(word); pos != std::string::npos;
       pos = code.find(word, pos + 1)) {
    const bool left_ok =
        pos == 0 || !(std::isalnum(static_cast<unsigned char>(
                          code[pos - 1])) ||
                      code[pos - 1] == '_');
    std::size_t after = pos + word.size();
    while (after < code.size() && (code[after] == ' ' || code[after] == '\t')) {
      ++after;
    }
    if (left_ok && after < code.size() && code[after] == '(') return true;
  }
  return false;
}

TEST(Lint, TokenScannerFixesLegacyFalsePositives) {
  // An apostrophe in a comment flipped the old scanner into a char
  // literal, resurfacing the rest of the comment as code.
  const std::string contraction =
      "int n = 1'000;  // don't call rand() in here\n";
  ASSERT_TRUE(legacy_sees_call(contraction, "rand"));
  EXPECT_TRUE(rules_of("src/a.cpp", contraction).empty());

  // `#if 0` regions were plain code to the old scanner.
  const std::string disabled =
      "#if 0\n"
      "int dead = rand();\n"
      "#endif\n";
  ASSERT_TRUE(legacy_sees_call(disabled, "rand"));
  EXPECT_TRUE(rules_of("src/a.cpp", disabled).empty());

  // A line comment ending in a backslash splices into the next physical
  // line; the old scanner reset at the newline and saw code.
  const std::string continued =
      "// see the fallback below \\\n"
      "int unused_fallback = rand();\n";
  ASSERT_TRUE(legacy_sees_call(continued, "rand"));
  EXPECT_TRUE(rules_of("src/a.cpp", continued).empty());
}

// --- symbol index: functions, annotations, includes ---

TEST(Lint, IndexAnnotationAttachesToStructTag) {
  const auto index = index_file("src/a.h",
                                "#include <vector>\n"
                                "// pmiot: sensitive — per-home memoir\n"
                                "struct Memoir {\n"
                                "  std::vector<double> kw;\n"
                                "};\n");
  EXPECT_EQ(index.sensitive_names, std::vector<std::string>{"Memoir"});
  EXPECT_TRUE(index.annotation_errors.empty());
}

TEST(Lint, IndexAnnotationAttachesToTrailingField) {
  const auto index =
      index_file("src/a.h",
                 "#include <vector>\n"
                 "struct House {\n"
                 "  std::vector<int> occupants;  ///< truth; pmiot: sensitive\n"
                 "};\n");
  EXPECT_EQ(index.sensitive_names, std::vector<std::string>{"occupants"});
}

TEST(Lint, IndexNoAllocMarkerReachesMultiLineSignatures) {
  const auto index = index_file("src/a.cpp",
                                "// pmiot: no-alloc\n"
                                "void\n"
                                "hot_merge(int a,\n"
                                "          int b) { use(a, b); }\n");
  ASSERT_EQ(index.functions.size(), 1u);
  EXPECT_EQ(index.functions[0].name, "hot_merge");
  EXPECT_TRUE(index.functions[0].no_alloc);
}

TEST(Lint, IndexQualifiedPmiotNamesInProseAreNotAnnotations) {
  const auto index = index_file(
      "src/a.cpp",
      "// pmiot::par owns sharding; see also pmiot: (nothing).\n"
      "int x = 1;\n");
  EXPECT_TRUE(index.annotations.empty());
  EXPECT_TRUE(index.annotation_errors.empty());
}

TEST(Lint, IndexCollectsQuotedProjectIncludesInOrder) {
  const auto index = index_file("src/a.cpp",
                                "#include \"timeseries/timeseries.h\"\n"
                                "#include <vector>\n"
                                "#include \"common/check.h\"\n"
                                "int x = 1;\n");
  const std::vector<std::string> expected = {"timeseries/timeseries.h",
                                             "common/check.h"};
  EXPECT_EQ(index.includes, expected);
}

// --- par-rng-seed: the one-level helper hop ---

TEST(Lint, ParRngSeedFollowsSeedsThroughOneHelperCall) {
  const std::string use =
      "void fill(std::vector<double>& out, std::uint64_t base) {\n"
      "  par::parallel_for(0, out.size(), [&](std::size_t i) {\n"
      "    Rng rng(stream_for(base, i));\n"
      "    out[i] = rng.uniform();\n"
      "  });\n"
      "}\n";
  // The helper's body mentions a seed, so the hop is satisfied.
  const std::string seeded_helper =
      "std::uint64_t stream_for(std::uint64_t base_seed, std::size_t i) {\n"
      "  return mix(base_seed, i);\n"
      "}\n";
  EXPECT_TRUE(rules_of_project(
                  {{"src/h.cpp", seeded_helper}, {"src/u.cpp", use}})
                  .empty());

  // A helper that never mentions a seed does not launder the violation.
  const std::string unseeded_helper =
      "std::uint64_t stream_for(std::uint64_t base, std::size_t i) {\n"
      "  return base + i;\n"
      "}\n";
  EXPECT_EQ(rules_of_project(
                {{"src/h.cpp", unseeded_helper}, {"src/u.cpp", use}}),
            std::vector<std::string>{"par-rng-seed"});
}

// --- privacy-flow: annotated taint, built-ins, custody handoffs ---

TEST(Lint, PrivacyFlowFlagsAnnotatedTaintReachingASink) {
  const std::string header =
      "#include <vector>\n"
      "// pmiot: sensitive — per-home memoir\n"
      "struct Memoir {\n"
      "  std::vector<double> kw;\n"
      "};\n";
  const std::string writer =
      "void export_memoir(const Memoir& m, const std::string& path) {\n"
      "  std::ofstream os(path);\n"
      "  os << m.kw.size();\n"
      "}\n";
  const auto rules = rules_of_project(
      {{"src/synth/memoir.h", header}, {"src/io/export.cpp", writer}});
  EXPECT_EQ(rules, std::vector<std::string>{"privacy-flow"});

  // The same writer outside src/ is a tool, not library code.
  EXPECT_TRUE(rules_of_project({{"src/synth/memoir.h", header},
                                {"tools/export.cpp", writer}})
                  .empty());
}

TEST(Lint, PrivacyFlowPropagatesThroughTheCallGraph) {
  const std::string header =
      "#include <vector>\n"
      "// pmiot: sensitive\n"
      "struct Memoir {\n"
      "  std::vector<double> kw;\n"
      "};\n";
  // `publish` never writes itself; it reaches the sink through dump_rows.
  const std::string caller =
      "void publish(const Memoir& m) { dump_rows(m.kw); }\n";
  const std::string callee =
      "void dump_rows(const std::vector<double>& rows) {\n"
      "  std::ofstream os(\"rows.txt\");\n"
      "  os << rows.size();\n"
      "}\n";
  const auto diagnostics = [&] {
    Analyzer analyzer;
    analyzer.add_file("src/synth/memoir.h", header);
    analyzer.add_file("src/core/publish.cpp", caller);
    analyzer.add_file("src/io/dump.cpp", callee);
    return analyzer.run();
  }();
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "privacy-flow");
  // Anchored at the tainted function, not the helper that merely writes.
  EXPECT_EQ(diagnostics[0].file, "src/core/publish.cpp");
}

TEST(Lint, PrivacyFlowStopsAtSanctionedCustodyHandoffs) {
  const std::string header =
      "#include <vector>\n"
      "// pmiot: sensitive\n"
      "struct Memoir {\n"
      "  std::vector<double> kw;\n"
      "};\n";
  const std::string caller =
      "void release(const Memoir& m) { defend_and_write(m); }\n";
  const std::string defense =
      "// pmiot: egress — the defended view leaves through here\n"
      "void defend_and_write(const Memoir& m) {\n"
      "  std::ofstream os(\"out.txt\");\n"
      "  os << m.kw.size();\n"
      "}\n";
  EXPECT_TRUE(rules_of_project({{"src/synth/memoir.h", header},
                                {"src/core/release.cpp", caller},
                                {"src/defense/writer.cpp", defense}})
                  .empty());
}

TEST(Lint, SanctionedModulesMustMarkDirectEgress) {
  const std::string unmarked =
      "void persist(std::span<const double> payload, std::FILE* f) {\n"
      "  std::fwrite(payload.data(), 8, payload.size(), f);\n"
      "}\n";
  const auto diagnostics =
      lint_source("src/campaign/writer.cpp", unmarked);
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "privacy-flow");
  EXPECT_NE(diagnostics[0].message.find("custody"), std::string::npos);

  const std::string marked =
      "// pmiot: egress — checkpoint custody boundary\n" + unmarked;
  EXPECT_TRUE(rules_of("src/campaign/writer.cpp", marked).empty());
}

TEST(Lint, EgressOutsideSanctionedModulesIsABadAnnotation) {
  const std::string source =
      "// pmiot: egress — wishful thinking\n"
      "void send_all(int x) { use(x); }\n";
  EXPECT_EQ(rules_of("src/net/leak.cpp", source),
            std::vector<std::string>{"bad-annotation"});
}

TEST(Lint, PrivacyFlowBuiltinsNeedNoAnnotation) {
  // Anything named *occupancy* is born sensitive.
  const std::string occ =
      "void log_occupancy(const std::vector<int>& occupancy_minutes) {\n"
      "  std::ofstream os(\"occ.txt\");\n"
      "  os << occupancy_minutes.size();\n"
      "}\n";
  EXPECT_EQ(rules_of("src/niom/log.cpp", occ),
            std::vector<std::string>{"privacy-flow"});

  // The payload built-in is an exact-identifier match, not a substring.
  const std::string near_miss =
      "void note_width(std::size_t payload_doubles) {\n"
      "  std::ofstream os(\"w.txt\");\n"
      "  os << payload_doubles;\n"
      "}\n";
  EXPECT_TRUE(rules_of("src/io/width.cpp", near_miss).empty());
}

TEST(Lint, PrivacyFlowHonoursJustifiedAllows) {
  const std::string source =
      "void save_occupancy(const std::vector<int>& occupancy) {\n"
      "  // local ground-truth archive, not a release channel.\n"
      "  // pmiot-lint" ": allow(privacy-flow)\n"
      "  std::ofstream os(\"occ.txt\");\n"
      "  os << occupancy.size();\n"
      "}\n";
  EXPECT_TRUE(rules_of("src/synth/save.cpp", source).empty());
}

// --- check-coverage: parser entry points must validate ---

TEST(Lint, CheckCoverageFlagsUncheckedParserEntryPoints) {
  const std::string unchecked =
      "int parse_frame(const unsigned char* p, std::size_t n) {\n"
      "  return p[0] + static_cast<int>(n);\n"
      "}\n";
  EXPECT_EQ(rules_of("src/net/frame.cpp", unchecked),
            std::vector<std::string>{"check-coverage"});

  const std::string checked =
      "int parse_frame(const unsigned char* p, std::size_t n) {\n"
      "  PMIOT_CHECK(n >= 4, \"frame too short\");\n"
      "  return p[0] + static_cast<int>(n);\n"
      "}\n";
  EXPECT_TRUE(rules_of("src/net/frame.cpp", checked).empty());
}

TEST(Lint, CheckCoverageAcceptsValidationInADirectHelper) {
  const std::string parser =
      "int parse_frame(const unsigned char* p, std::size_t n) {\n"
      "  validate_frame(p, n);\n"
      "  return p[0];\n"
      "}\n";
  const std::string helper =
      "void validate_frame(const unsigned char* p, std::size_t n) {\n"
      "  PMIOT_CHECK(p != nullptr && n >= 4, \"bad frame\");\n"
      "}\n";
  EXPECT_TRUE(rules_of_project({{"src/net/frame.cpp", parser},
                                {"src/net/validate.cpp", helper}})
                  .empty());
}

TEST(Lint, CheckCoverageScopesToRealEntryPoints) {
  // No parameters: nothing external to validate.
  EXPECT_TRUE(
      rules_of("src/a.cpp", "int load_defaults() { return 3; }\n").empty());
  // Outside src/ the rule stands down (test fixtures parse junk on
  // purpose).
  const std::string unchecked =
      "int parse_frame(const unsigned char* p, std::size_t n) {\n"
      "  return p[0] + static_cast<int>(n);\n"
      "}\n";
  EXPECT_TRUE(rules_of("tests/frame_test.cpp", unchecked).empty());
}

// --- no-alloc: annotated functions must not reach the heap ---

TEST(Lint, NoAllocFlagsDirectAllocations) {
  const std::string source =
      "// pmiot: no-alloc\n"
      "void hot(Buf& b) { b.p = new double[4]; }\n";
  EXPECT_EQ(rules_of("src/a.cpp", source),
            std::vector<std::string>{"no-alloc"});
}

TEST(Lint, NoAllocFlagsAllocationsThroughCallees) {
  const std::string hot =
      "// pmiot: no-alloc\n"
      "void hot_path(Buf& b) { grow(b); }\n";
  const std::string helper =
      "void grow(Buf& b) { b.p = new double[8]; }\n";
  const auto diagnostics = [&] {
    Analyzer analyzer;
    analyzer.add_file("src/hot.cpp", hot);
    analyzer.add_file("src/grow.cpp", helper);
    return analyzer.run();
  }();
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "no-alloc");
  EXPECT_EQ(diagnostics[0].file, "src/hot.cpp");
}

TEST(Lint, NoAllocIgnoresUnannotatedFunctionsAndArenaGrowth) {
  // `new` in an unannotated function is ordinary C++.
  EXPECT_TRUE(
      rules_of("src/a.cpp", "void f(Buf& b) { b.p = new double[4]; }\n")
          .empty());
  // Container growth is the runtime self-checks' half of the contract.
  const std::string growth =
      "// pmiot: no-alloc\n"
      "void hot(std::vector<double>& v) { v.push_back(1.0); }\n";
  EXPECT_TRUE(rules_of("src/a.cpp", growth).empty());
}

// --- bad-annotation: the grammar polices itself ---

TEST(Lint, UnknownAnnotationKindIsReported) {
  const std::string source =
      "// pmiot: frobnicate — not a thing\n"
      "int x = 1;\n";
  EXPECT_EQ(rules_of("src/a.cpp", source),
            std::vector<std::string>{"bad-annotation"});
}

TEST(Lint, DanglingAnnotationIsReported) {
  const std::string source =
      "int f() { return 1; }\n"
      "// pmiot: sensitive\n";
  EXPECT_EQ(rules_of("src/a.cpp", source),
            std::vector<std::string>{"bad-annotation"});
}

// --- report writers: JSON, SARIF, baseline ---

TEST(Lint, ReportJsonCarriesFindingsAndEscapes) {
  const std::vector<Diagnostic> diags = {
      {"src/a.cpp", 3, "raw-rand", "say \"no\" to rand"}};
  const std::string json = pmiot::lint::to_json(diags);
  EXPECT_NE(json.find("\"tool\": \"pmiot_lint\""), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"src/a.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"raw-rand\""), std::string::npos);
  EXPECT_NE(json.find("say \\\"no\\\" to rand"), std::string::npos);
}

TEST(Lint, ReportSarifCarriesRulesAndResults) {
  const std::vector<Diagnostic> diags = {
      {"src/a.cpp", 7, "privacy-flow", "leak"}};
  const std::string sarif = pmiot::lint::to_sarif(diags);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"privacy-flow\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 7"), std::string::npos);
  // Every rule the analyzer knows is declared in the driver block.
  for (const auto& rule : pmiot::lint::rule_names()) {
    EXPECT_NE(sarif.find("\"id\": \"" + rule + "\""), std::string::npos)
        << rule;
  }
}

TEST(Lint, ReportBaselineRoundTrips) {
  const Diagnostic d{"src/a.cpp", 3, "raw-rand", "msg"};
  EXPECT_EQ(pmiot::lint::baseline_key(d), "raw-rand src/a.cpp");
  const auto keys = pmiot::lint::parse_baseline(
      "# comment\n\n  raw-rand src/a.cpp  \nprivacy-flow src/b.cpp\n");
  EXPECT_EQ(keys.size(), 2u);
  EXPECT_TRUE(keys.count("raw-rand src/a.cpp"));
  EXPECT_TRUE(keys.count("privacy-flow src/b.cpp"));
}

}  // namespace
