// Tests for the columnar ML training kernels: randomized presorted-vs-naive
// tree equivalence (including degenerate corners), forest determinism across
// pool widths, batch-vs-per-row prediction identity, kNN tie-breaking with
// duplicated training points, and the kmeans 1-D fast path.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/kmeans.h"
#include "ml/knn.h"
#include "ml/random_forest.h"

namespace pmiot::ml {
namespace {

/// Gaussian class clusters: the first half of the features carry the class
/// signal, the rest are noise.
Dataset random_clusters(std::size_t n, std::size_t d, int classes, Rng& rng) {
  std::vector<std::vector<double>> centroids(static_cast<std::size_t>(classes),
                                             std::vector<double>(d, 0.0));
  for (auto& c : centroids) {
    for (std::size_t f = 0; f < d / 2 + 1; ++f) {
      c[f] = rng.uniform(-2.0, 2.0);
    }
  }
  Dataset data;
  for (std::size_t i = 0; i < n; ++i) {
    const auto cls = static_cast<std::size_t>(
        rng.uniform_int(0, classes - 1));
    std::vector<double> row(d);
    for (std::size_t f = 0; f < d; ++f) {
      row[f] = centroids[cls][f] + rng.normal(0.0, 1.0);
    }
    data.append(std::move(row), static_cast<int>(cls));
  }
  return data;
}

std::vector<int> per_row_predictions(const Classifier& model,
                                     const Dataset& data) {
  std::vector<int> out;
  out.reserve(data.size());
  for (const auto& row : data.rows) out.push_back(model.predict(row));
  return out;
}

/// Fits one tree per split algorithm from identical options/seed and
/// requires identical structure and identical predictions on train + probe.
void expect_split_algorithms_equivalent(const Dataset& train,
                                        const Dataset& probe,
                                        TreeOptions options,
                                        std::uint64_t seed) {
  options.split_algorithm = SplitAlgorithm::kPresorted;
  DecisionTree fast(options, seed);
  fast.fit(train);
  options.split_algorithm = SplitAlgorithm::kPerNodeSort;
  DecisionTree naive(options, seed);
  naive.fit(train);

  EXPECT_EQ(fast.node_count(), naive.node_count());
  EXPECT_EQ(fast.depth(), naive.depth());
  EXPECT_EQ(per_row_predictions(fast, train), per_row_predictions(naive, train));
  EXPECT_EQ(per_row_predictions(fast, probe), per_row_predictions(naive, probe));
}

// --- Presorted tree vs per-node-sort reference -------------------------------

TEST(PresortedTree, MatchesPerNodeSortAcrossRandomizedConfigs) {
  Rng rng(101);
  std::uint64_t seed = 1;
  for (int round = 0; round < 3; ++round) {
    const Dataset train = random_clusters(400, 8, 4, rng);
    const Dataset probe = random_clusters(150, 8, 4, rng);
    for (int max_depth : {3, 6, 12}) {
      for (std::size_t min_samples : {std::size_t{2}, std::size_t{25}}) {
        for (std::size_t max_features : {std::size_t{0}, std::size_t{2}}) {
          expect_split_algorithms_equivalent(
              train, probe,
              TreeOptions{.max_depth = max_depth,
                          .min_samples = min_samples,
                          .max_features = max_features},
              seed++);
        }
      }
    }
  }
}

TEST(PresortedTree, ConstantFeatureCorner) {
  Rng rng(202);
  Dataset train = random_clusters(300, 6, 3, rng);
  for (auto& row : train.rows) row[2] = 1.5;  // never splittable
  Dataset probe = random_clusters(100, 6, 3, rng);
  for (auto& row : probe.rows) row[2] = 1.5;
  expect_split_algorithms_equivalent(train, probe, TreeOptions{}, 7);
}

TEST(PresortedTree, AllLabelsEqualCorner) {
  Rng rng(303);
  Dataset train = random_clusters(200, 5, 3, rng);
  for (auto& label : train.labels) label = 2;  // pure root -> single leaf
  const Dataset probe = random_clusters(50, 5, 3, rng);
  expect_split_algorithms_equivalent(train, probe, TreeOptions{}, 7);
  DecisionTree tree(TreeOptions{}, 7);
  tree.fit(train);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.predict(probe.rows.front()), 2);
}

TEST(PresortedTree, DuplicatedValuesCorner) {
  // Quantized features produce long equal-value runs, exercising the
  // boundary-skip and the stability of the partition under ties.
  Rng rng(404);
  Dataset train;
  for (int i = 0; i < 500; ++i) {
    std::vector<double> row(4);
    for (auto& x : row) x = static_cast<double>(rng.uniform_int(0, 3));
    train.append(std::move(row), static_cast<int>(rng.uniform_int(0, 2)));
  }
  const Dataset probe = random_clusters(100, 4, 3, rng);
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    expect_split_algorithms_equivalent(train, probe, TreeOptions{}, seed);
    expect_split_algorithms_equivalent(
        train, probe, TreeOptions{.max_depth = 4, .max_features = 2}, seed);
  }
}

// --- Forest determinism ------------------------------------------------------

TEST(RandomForest, BitwiseIdenticalAcrossPoolWidths) {
  Rng rng(505);
  const Dataset train = random_clusters(400, 6, 3, rng);
  const Dataset probe = random_clusters(200, 6, 3, rng);
  const ForestOptions options{.num_trees = 12, .tree = TreeOptions{}};

  // Emulates PMIOT_THREADS in {1, 4, unset} inside one binary: fit the same
  // seeded forest under each pool width and require identical predictions.
  auto fit_and_predict = [&](par::ThreadPool* pool) {
    RandomForest forest(options, 99);
    if (pool == nullptr) {
      forest.fit(train);
      return forest.predict_all(probe);
    }
    par::ScopedPoolOverride guard(*pool);
    forest.fit(train);
    return forest.predict_all(probe);
  };

  par::ThreadPool serial(1);
  par::ThreadPool wide(4);
  const auto at_default = fit_and_predict(nullptr);
  const auto at_one = fit_and_predict(&serial);
  const auto at_four = fit_and_predict(&wide);
  EXPECT_EQ(at_default, at_one);
  EXPECT_EQ(at_default, at_four);
}

TEST(RandomForest, PresortedMatchesPerNodeSortForest) {
  Rng rng(606);
  const Dataset train = random_clusters(350, 6, 3, rng);
  const Dataset probe = random_clusters(150, 6, 3, rng);

  ForestOptions options{.num_trees = 8, .tree = TreeOptions{}};
  RandomForest fast(options, 42);
  fast.fit(train);
  options.tree.split_algorithm = SplitAlgorithm::kPerNodeSort;
  RandomForest naive(options, 42);
  naive.fit(train);

  EXPECT_EQ(fast.predict_all(probe), naive.predict_all(probe));
  EXPECT_EQ(fast.predict_all(train), naive.predict_all(train));
}

// --- Batch prediction identity -----------------------------------------------

TEST(Classifier, PredictAllMatchesPerRowAtEveryPoolWidth) {
  Rng rng(707);
  const Dataset train = random_clusters(300, 5, 4, rng);
  const Dataset probe = random_clusters(120, 5, 4, rng);

  DecisionTree tree(TreeOptions{}, 3);
  tree.fit(train);
  RandomForest forest(ForestOptions{.num_trees = 6, .tree = TreeOptions{}}, 3);
  forest.fit(train);

  for (const Classifier* model :
       {static_cast<const Classifier*>(&tree),
        static_cast<const Classifier*>(&forest)}) {
    const auto expected = per_row_predictions(*model, probe);
    EXPECT_EQ(model->predict_all(probe), expected);
    par::ThreadPool serial(1);
    {
      par::ScopedPoolOverride guard(serial);
      EXPECT_EQ(model->predict_all(probe), expected);
    }
    par::ThreadPool wide(4);
    {
      par::ScopedPoolOverride guard(wide);
      EXPECT_EQ(model->predict_all(probe), expected);
    }
  }
}

// --- kNN tie-breaking --------------------------------------------------------

TEST(Knn, EqualDistanceNeighboursOrderedByTrainingRow) {
  // Three exact copies of the same point with conflicting labels: every
  // distance ties, so the neighbour set is decided purely by row order.
  Dataset train;
  train.append({0.0, 0.0}, 0);  // row 0
  train.append({0.0, 0.0}, 1);  // row 1
  train.append({0.0, 0.0}, 1);  // row 2
  train.append({5.0, 5.0}, 1);

  const std::vector<double> query{0.0, 0.0};

  KnnClassifier k1(1);
  k1.fit(train);
  EXPECT_EQ(k1.predict(query), 0);  // row 0 wins the tie

  KnnClassifier k2(2);
  k2.fit(train);
  // Rows 0 and 1: one vote each, class tie broken by the nearest
  // neighbour, which is row 0.
  EXPECT_EQ(k2.predict(query), 0);

  KnnClassifier k3(3);
  k3.fit(train);
  EXPECT_EQ(k3.predict(query), 1);  // rows 0,1,2 vote 0,1,1

  Dataset probe;
  probe.append(query, 0);
  EXPECT_EQ(k1.predict_all(probe), std::vector<int>{0});
  EXPECT_EQ(k2.predict_all(probe), std::vector<int>{0});
  EXPECT_EQ(k3.predict_all(probe), std::vector<int>{1});
}

TEST(Knn, BatchMatchesPerRowWithDuplicatedTrainingPoints) {
  Rng rng(808);
  Dataset train = random_clusters(150, 4, 3, rng);
  // Duplicate every point with a rotated label so equal-distance ties at
  // the k-boundary are common and label-relevant.
  const std::size_t original = train.size();
  for (std::size_t i = 0; i < original; ++i) {
    train.append(train.rows[i], (train.labels[i] + 1) % 3);
  }
  Dataset probe = random_clusters(60, 4, 3, rng);
  // Also query exactly on training points.
  for (std::size_t i = 0; i < 40; ++i) {
    probe.append(train.rows[i * 3], 0);
  }

  for (int k : {1, 2, 5}) {
    KnnClassifier knn(k);
    knn.fit(train);
    EXPECT_EQ(knn.predict_all(probe), per_row_predictions(knn, probe));
  }
}

// --- kmeans 1-D fast path ----------------------------------------------------

TEST(KMeans, OneDFastPathMatchesGeneralKernel) {
  Rng data_rng(909);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(data_rng.normal(0.0, 1.0));
  for (int i = 0; i < 100; ++i) xs.push_back(data_rng.normal(6.0, 0.5));
  for (int i = 0; i < 50; ++i) xs.push_back(3.0);  // duplicates

  std::vector<std::vector<double>> rows;
  rows.reserve(xs.size());
  for (double x : xs) rows.push_back({x});

  for (int k : {1, 2, 3, 5}) {
    Rng rng_full(1234);
    Rng rng_fast(1234);
    const KMeansResult full = kmeans(rows, k, rng_full);
    const KMeansResult fast = kmeans1d(xs, k, rng_fast);
    EXPECT_EQ(fast.centroids, full.centroids) << "k=" << k;
    EXPECT_EQ(fast.assignment, full.assignment) << "k=" << k;
    EXPECT_EQ(fast.inertia, full.inertia) << "k=" << k;
    EXPECT_EQ(fast.iterations, full.iterations) << "k=" << k;
  }
}

}  // namespace
}  // namespace pmiot::ml
