// Unit tests for pmiot_ml's classical models: datasets, k-NN, naive Bayes,
// decision trees, random forests, logistic regression, k-means, metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/stats.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/kmeans.h"
#include "ml/knn.h"
#include "ml/logistic.h"
#include "ml/metrics.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"

namespace pmiot::ml {
namespace {

/// Two well-separated Gaussian blobs, labels 0/1.
Dataset two_blobs(int per_class, Rng& rng) {
  Dataset data;
  for (int i = 0; i < per_class; ++i) {
    data.append({rng.normal(0.0, 0.5), rng.normal(0.0, 0.5)}, 0);
    data.append({rng.normal(4.0, 0.5), rng.normal(4.0, 0.5)}, 1);
  }
  return data;
}

/// XOR pattern: not linearly separable (trees must solve it; logistic
/// regression cannot).
Dataset xor_data(int per_corner, Rng& rng) {
  Dataset data;
  for (int i = 0; i < per_corner; ++i) {
    for (int a = 0; a <= 1; ++a) {
      for (int b = 0; b <= 1; ++b) {
        data.append({a + rng.normal(0.0, 0.05), b + rng.normal(0.0, 0.05)},
                    a ^ b);
      }
    }
  }
  return data;
}

double accuracy(const Classifier& model, const Dataset& test) {
  const auto pred = model.predict_all(test);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    correct += pred[i] == test.labels[i] ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

// --- Dataset ------------------------------------------------------------------

TEST(Dataset, ValidateCatchesRaggedRows) {
  Dataset data;
  data.rows = {{1.0, 2.0}, {1.0}};
  data.labels = {0, 1};
  EXPECT_THROW(data.validate(), InvalidArgument);
}

TEST(Dataset, ValidateCatchesNegativeLabels) {
  Dataset data;
  data.rows = {{1.0}};
  data.labels = {-1};
  EXPECT_THROW(data.validate(), InvalidArgument);
}

TEST(Dataset, AppendEnforcesWidth) {
  Dataset data;
  data.append({1.0, 2.0}, 0);
  EXPECT_THROW(data.append({1.0}, 0), InvalidArgument);
  EXPECT_EQ(data.width(), 2u);
}

TEST(Dataset, NumClasses) {
  Dataset data;
  data.append({0.0}, 0);
  data.append({1.0}, 4);
  EXPECT_EQ(data.num_classes(), 5);
}

TEST(Dataset, TrainTestSplitPartitions) {
  Rng rng(1);
  auto data = two_blobs(50, rng);
  const auto split = train_test_split(data, 0.3, rng);
  EXPECT_EQ(split.train.size() + split.test.size(), data.size());
  EXPECT_NEAR(static_cast<double>(split.test.size()) /
                  static_cast<double>(data.size()),
              0.3, 0.02);
  EXPECT_THROW(train_test_split(data, 0.0, rng), InvalidArgument);
  EXPECT_THROW(train_test_split(data, 1.0, rng), InvalidArgument);
}

TEST(Dataset, KFoldCoversEverythingOnce) {
  Rng rng(2);
  const auto folds = kfold_indices(100, 5, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::vector<int> seen(100, 0);
  for (const auto& fold : folds) {
    EXPECT_EQ(fold.size(), 20u);
    for (auto i : fold) ++seen[i];
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(Dataset, TakeSelectsRows) {
  Dataset data;
  data.append({1.0}, 0);
  data.append({2.0}, 1);
  data.append({3.0}, 0);
  const std::vector<std::size_t> idx{2, 0};
  const auto sub = take(data, idx);
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_DOUBLE_EQ(sub.rows[0][0], 3.0);
  EXPECT_EQ(sub.labels[1], 0);
}

TEST(StandardScaler, ZeroMeanUnitVariance) {
  Rng rng(3);
  auto data = two_blobs(100, rng);
  StandardScaler scaler;
  scaler.fit(data);
  scaler.transform_in_place(data);
  // Column means ~0, variances ~1 after scaling.
  double mean0 = 0.0;
  for (const auto& row : data.rows) mean0 += row[0];
  mean0 /= static_cast<double>(data.size());
  EXPECT_NEAR(mean0, 0.0, 1e-9);
}

TEST(StandardScaler, RequiresFit) {
  StandardScaler scaler;
  EXPECT_THROW(scaler.transform(std::vector<double>{1.0}), InvalidArgument);
}

// --- Classifiers ----------------------------------------------------------------

TEST(Knn, SeparatesBlobs) {
  Rng rng(5);
  auto split = train_test_split(two_blobs(100, rng), 0.3, rng);
  KnnClassifier knn(5);
  knn.fit(split.train);
  EXPECT_GT(accuracy(knn, split.test), 0.97);
}

TEST(Knn, KOneMemorizesTraining) {
  Rng rng(5);
  auto data = two_blobs(20, rng);
  KnnClassifier knn(1);
  knn.fit(data);
  EXPECT_DOUBLE_EQ(accuracy(knn, data), 1.0);
}

TEST(Knn, RejectsInvalidConstruction) {
  EXPECT_THROW(KnnClassifier(0), InvalidArgument);
  KnnClassifier knn(3);
  EXPECT_THROW(knn.predict(std::vector<double>{1.0}), InvalidArgument);
}

TEST(NaiveBayes, SeparatesBlobs) {
  Rng rng(7);
  auto split = train_test_split(two_blobs(100, rng), 0.3, rng);
  GaussianNaiveBayes nb;
  nb.fit(split.train);
  EXPECT_GT(accuracy(nb, split.test), 0.97);
}

TEST(NaiveBayes, LogJointOrdersClasses) {
  Rng rng(7);
  auto data = two_blobs(50, rng);
  GaussianNaiveBayes nb;
  nb.fit(data);
  const auto lj0 = nb.log_joint(std::vector<double>{0.0, 0.0});
  EXPECT_GT(lj0[0], lj0[1]);
  const auto lj1 = nb.log_joint(std::vector<double>{4.0, 4.0});
  EXPECT_GT(lj1[1], lj1[0]);
}

TEST(DecisionTree, SolvesXor) {
  Rng rng(9);
  auto split = train_test_split(xor_data(50, rng), 0.25, rng);
  DecisionTree tree;
  tree.fit(split.train);
  EXPECT_GT(accuracy(tree, split.test), 0.88);
}

TEST(DecisionTree, DepthLimitIsRespected) {
  Rng rng(9);
  auto data = xor_data(40, rng);
  TreeOptions options;
  options.max_depth = 1;
  DecisionTree stump(options);
  stump.fit(data);
  EXPECT_LE(stump.depth(), 1);
  // A depth-1 stump cannot solve XOR.
  EXPECT_LT(accuracy(stump, data), 0.8);
}

TEST(DecisionTree, PureNodeStopsEarly) {
  Dataset data;
  for (int i = 0; i < 10; ++i) data.append({static_cast<double>(i)}, 0);
  DecisionTree tree;
  tree.fit(data);
  EXPECT_EQ(tree.node_count(), 1u);
}

TEST(RandomForest, SolvesXorRobustly) {
  Rng rng(11);
  auto split = train_test_split(xor_data(60, rng), 0.25, rng);
  RandomForest forest;
  forest.fit(split.train);
  EXPECT_EQ(forest.tree_count(), 25u);
  EXPECT_GT(accuracy(forest, split.test), 0.95);
}

TEST(Logistic, SeparatesLinearBlobs) {
  Rng rng(13);
  auto split = train_test_split(two_blobs(80, rng), 0.25, rng);
  LogisticRegression lr;
  lr.fit(split.train);
  EXPECT_GT(accuracy(lr, split.test), 0.95);
}

TEST(Logistic, ProbabilitiesSumToOne) {
  Rng rng(13);
  auto data = two_blobs(30, rng);
  LogisticRegression lr;
  lr.fit(data);
  const auto p = lr.predict_proba(std::vector<double>{1.0, 2.0});
  double sum = 0.0;
  for (double v : p) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Logistic, CannotSolveXor) {
  Rng rng(13);
  auto data = xor_data(60, rng);
  LogisticRegression lr;
  lr.fit(data);
  EXPECT_LT(accuracy(lr, data), 0.75);  // linear model, nonlinear problem
}

TEST(Classifiers, ThrowWhenUnfitted) {
  const std::vector<double> row{1.0, 2.0};
  EXPECT_THROW(KnnClassifier().predict(row), InvalidArgument);
  EXPECT_THROW(GaussianNaiveBayes().predict(row), InvalidArgument);
  EXPECT_THROW(DecisionTree().predict(row), InvalidArgument);
  EXPECT_THROW(RandomForest().predict(row), InvalidArgument);
  EXPECT_THROW(LogisticRegression().predict(row), InvalidArgument);
}

// --- k-means --------------------------------------------------------------------

TEST(KMeans, FindsTwoLevels1d) {
  Rng rng(15);
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(rng.normal(0.0, 0.05));
    xs.push_back(rng.normal(5.0, 0.05));
  }
  const auto result = kmeans1d(xs, 2, rng);
  ASSERT_EQ(result.centroids.size(), 2u);
  const double lo = std::min(result.centroids[0][0], result.centroids[1][0]);
  const double hi = std::max(result.centroids[0][0], result.centroids[1][0]);
  EXPECT_NEAR(lo, 0.0, 0.1);
  EXPECT_NEAR(hi, 5.0, 0.1);
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  Rng rng(15);
  std::vector<double> xs;
  for (int i = 0; i < 300; ++i) xs.push_back(rng.uniform(0.0, 10.0));
  Rng r1(1), r2(1);
  const auto k2 = kmeans1d(xs, 2, r1);
  const auto k5 = kmeans1d(xs, 5, r2);
  EXPECT_LT(k5.inertia, k2.inertia);
}

TEST(KMeans, AssignmentsAreValid) {
  Rng rng(15);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 50; ++i) rows.push_back({rng.uniform(), rng.uniform()});
  const auto result = kmeans(rows, 4, rng);
  for (int a : result.assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, static_cast<int>(result.centroids.size()));
  }
}

TEST(KMeans, RejectsBadInput) {
  Rng rng(1);
  EXPECT_THROW(kmeans({}, 2, rng), InvalidArgument);
  EXPECT_THROW(kmeans({{1.0}}, 0, rng), InvalidArgument);
}

// --- multiclass metrics -----------------------------------------------------------

TEST(ConfusionMatrix, CountsAndAccuracy) {
  const std::vector<int> pred{0, 1, 2, 1, 0};
  const std::vector<int> actual{0, 1, 1, 1, 2};
  ConfusionMatrix cm(pred, actual, 3);
  EXPECT_EQ(cm.count(1, 1), 2u);
  EXPECT_EQ(cm.count(1, 2), 1u);
  EXPECT_EQ(cm.count(2, 0), 1u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.6);
}

TEST(ConfusionMatrix, PerClassPrecisionRecall) {
  const std::vector<int> pred{0, 0, 1, 1};
  const std::vector<int> actual{0, 1, 1, 1};
  ConfusionMatrix cm(pred, actual, 2);
  EXPECT_DOUBLE_EQ(cm.precision(0), 0.5);
  EXPECT_DOUBLE_EQ(cm.recall(0), 1.0);
  EXPECT_DOUBLE_EQ(cm.precision(1), 1.0);
  EXPECT_NEAR(cm.recall(1), 2.0 / 3.0, 1e-12);
  EXPECT_GT(cm.macro_f1(), 0.0);
}

TEST(ConfusionMatrix, RejectsOutOfRangeLabels) {
  const std::vector<int> pred{0, 3};
  const std::vector<int> actual{0, 1};
  EXPECT_THROW(ConfusionMatrix(pred, actual, 2), InvalidArgument);
}

TEST(ConfusionMatrix, ToStringContainsNames) {
  const std::vector<int> pred{0, 1};
  const std::vector<int> actual{0, 1};
  ConfusionMatrix cm(pred, actual, 2);
  const auto text = cm.to_string({"cat", "dog"});
  EXPECT_NE(text.find("cat"), std::string::npos);
  EXPECT_NE(text.find("dog"), std::string::npos);
}

TEST(ConfusionMatrix, MccHandComputedThreeClass) {
  // trace c = 4, s = 6, row sums t = {2,2,2}, column sums p = {2,2,2}:
  // R_K = (4*6 - 12) / sqrt((36-12)(36-12)) = 12/24 = 0.5.
  const std::vector<int> pred{0, 1, 2, 0, 1, 2};
  const std::vector<int> actual{0, 1, 2, 0, 2, 1};
  ConfusionMatrix cm(pred, actual, 3);
  EXPECT_DOUBLE_EQ(cm.mcc(), 0.5);
}

TEST(ConfusionMatrix, MccBoundsAndDegenerateCases) {
  const std::vector<int> perfect{0, 1, 2, 0};
  EXPECT_DOUBLE_EQ(ConfusionMatrix(perfect, perfect, 3).mcc(), 1.0);
  // Anti-correlated binary labels.
  const std::vector<int> pred{1, 0, 1, 0};
  const std::vector<int> actual{0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(ConfusionMatrix(pred, actual, 2).mcc(), -1.0);
  // Degenerate marginals (one predicted class / one actual class) are
  // chance level by convention, matching the binary rule.
  const std::vector<int> constant{1, 1, 1, 1};
  const std::vector<int> mixed{0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(ConfusionMatrix(constant, mixed, 2).mcc(), 0.0);
  EXPECT_DOUBLE_EQ(ConfusionMatrix(mixed, constant, 2).mcc(), 0.0);
}

TEST(ConfusionMatrix, MccReducesToBinaryMcc) {
  const std::vector<int> pred{1, 0, 1, 1, 0, 1, 0, 0, 1, 1};
  const std::vector<int> actual{1, 0, 0, 1, 0, 1, 1, 0, 0, 1};
  ConfusionMatrix cm(pred, actual, 2);
  const auto binary = stats::confusion(pred, actual);
  EXPECT_DOUBLE_EQ(cm.mcc(), binary.mcc());
}

// --- parameterized sweeps -----------------------------------------------------------

class ForestSizes : public ::testing::TestWithParam<int> {};

TEST_P(ForestSizes, AccuracyHoldsAcrossSizes) {
  Rng rng(21);
  auto split = train_test_split(two_blobs(60, rng), 0.3, rng);
  ForestOptions options;
  options.num_trees = GetParam();
  RandomForest forest(options);
  forest.fit(split.train);
  EXPECT_GT(accuracy(forest, split.test), 0.9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ForestSizes, ::testing::Values(1, 5, 15, 40));

class KnnNeighbours : public ::testing::TestWithParam<int> {};

TEST_P(KnnNeighbours, BlobsStaySeparable) {
  Rng rng(22);
  auto split = train_test_split(two_blobs(60, rng), 0.3, rng);
  KnnClassifier knn(GetParam());
  knn.fit(split.train);
  EXPECT_GT(accuracy(knn, split.test), 0.9);
}

INSTANTIATE_TEST_SUITE_P(Ks, KnnNeighbours, ::testing::Values(1, 3, 7, 15));

}  // namespace
}  // namespace pmiot::ml
