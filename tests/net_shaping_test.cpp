// Tests for the traffic-reshaping defenses (net/shaping.h), the
// defense-vs-attack arena (net/arena.h), and the campaign-side network
// axis (campaign/net_axis.h): the θ=0 passthrough contract, bitwise
// determinism across pool widths, streaming-extractor parity on shaped
// captures (window-boundary exclusivity included), and the per-defense
// structural guarantees (full-intensity quantization, single VPN tuple).
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "campaign/net_axis.h"
#include "common/error.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "net/arena.h"
#include "net/device.h"
#include "net/features.h"
#include "net/shaping.h"
#include "net/window_accumulator.h"

namespace pmiot::net {
namespace {

bool same_packets(const std::vector<Packet>& a, const std::vector<Packet>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a[i];
    const auto& y = b[i];
    if (x.timestamp_s != y.timestamp_s || x.src_ip != y.src_ip ||
        x.dst_ip != y.dst_ip || x.src_port != y.src_port ||
        x.dst_port != y.dst_port || x.protocol != y.protocol ||
        x.size_bytes != y.size_bytes) {
      return false;
    }
  }
  return true;
}

HomeNetwork small_home(std::uint64_t seed = 11, double duration_s = 900.0) {
  Rng rng(seed);
  return simulate_home_network(1, duration_s, rng);
}

// --- TrafficDefense contract ------------------------------------------------

TEST(Shaping, IntensityZeroIsBitwisePassthrough) {
  const auto home = small_home();
  for (const auto& name : traffic_defense_names()) {
    const auto defense = make_traffic_defense(name);
    Rng rng(5);
    const auto shaped = defense->apply(home, 900.0, 0.0, rng);
    EXPECT_TRUE(same_packets(shaped.packets, home.packets)) << name;
    EXPECT_EQ(shaped.added_bytes, 0.0) << name;
    EXPECT_EQ(shaped.added_latency_s, 0.0) << name;
    EXPECT_EQ(shaped.delayed_packets, 0u) << name;
  }
}

TEST(Shaping, SameSeedSameOutput) {
  const auto home = small_home();
  for (const auto& name : traffic_defense_names()) {
    const auto defense = make_traffic_defense(name);
    Rng a(99), b(99);
    const auto first = defense->apply(home, 900.0, 0.6, a);
    const auto second = defense->apply(home, 900.0, 0.6, b);
    EXPECT_TRUE(same_packets(first.packets, second.packets)) << name;
    EXPECT_EQ(first.added_bytes, second.added_bytes) << name;
    EXPECT_EQ(first.added_latency_s, second.added_latency_s) << name;
  }
}

TEST(Shaping, OutputIsTimeSorted) {
  const auto home = small_home();
  for (const auto& name : traffic_defense_names()) {
    const auto defense = make_traffic_defense(name);
    Rng rng(7);
    const auto shaped = defense->apply(home, 900.0, 1.0, rng);
    for (std::size_t i = 1; i < shaped.packets.size(); ++i) {
      ASSERT_LE(shaped.packets[i - 1].timestamp_s,
                shaped.packets[i].timestamp_s)
          << name;
    }
  }
}

TEST(Shaping, RegistryRejectsUnknownName) {
  EXPECT_THROW(make_traffic_defense("warp-drive"), InvalidArgument);
  EXPECT_EQ(traffic_defense_names().size(), 4u);
}

TEST(Shaping, ConstantRateFullIntensityQuantizesEverySize) {
  const auto home = small_home();
  ConstantRatePadding defense;
  Rng rng(13);
  const auto shaped = defense.apply(home, 900.0, 1.0, rng);
  EXPECT_GT(shaped.added_bytes, 0.0);
  for (const auto& p : wan_view(shaped.packets)) {
    ASSERT_GT(p.size_bytes, 0);
    ASSERT_EQ(p.size_bytes % 1400, 0)
        << "unquantized wire size " << p.size_bytes;
  }
}

TEST(Shaping, ConstantRateBillsLatencyOnDelayedPackets) {
  const auto home = small_home();
  ConstantRatePadding defense;
  Rng rng(13);
  const auto shaped = defense.apply(home, 900.0, 0.8, rng);
  EXPECT_GT(shaped.delayed_packets, 0u);
  EXPECT_GT(shaped.added_latency_s, 0.0);
  EXPECT_GT(shaped.mean_added_latency_s(), 0.0);
}

TEST(Shaping, CoverTrafficOnlyAddsPackets) {
  const auto home = small_home();
  StochasticCoverTraffic defense;
  Rng rng(17);
  const auto shaped = defense.apply(home, 900.0, 1.0, rng);
  EXPECT_GT(shaped.packets.size(), home.packets.size());
  EXPECT_GT(shaped.added_bytes, 0.0);
  EXPECT_EQ(shaped.added_latency_s, 0.0);  // never touches real packets
  // Every original packet survives verbatim (cover is a superset).
  std::multiset<double> original, kept;
  for (const auto& p : home.packets) original.insert(p.timestamp_s);
  for (const auto& p : shaped.packets) kept.insert(p.timestamp_s);
  for (const auto& ts : original) ASSERT_EQ(kept.count(ts) >= 1, true);
}

TEST(Shaping, VpnFullIntensityCollapsesToOneTuple) {
  const auto home = small_home();
  VpnAggregation defense;
  Rng rng(19);
  const auto shaped = defense.apply(home, 900.0, 1.0, rng);
  const auto wan = wan_view(shaped.packets);
  ASSERT_FALSE(wan.empty());
  const auto router = make_ip(10, 0, 0, 1);
  const auto concentrator = make_ip(198, 18, 0, 1);
  for (const auto& p : wan) {
    const bool up = p.src_ip == router && p.dst_ip == concentrator;
    const bool down = p.src_ip == concentrator && p.dst_ip == router;
    ASSERT_TRUE(up || down);
    ASSERT_EQ(p.src_port, 4500);
    ASSERT_EQ(p.dst_port, 4500);
    ASSERT_EQ(p.protocol, Protocol::kUdp);
    ASSERT_EQ(p.size_bytes % 16, 0);  // ESP-padded
  }
  EXPECT_GT(shaped.added_bytes, 0.0);  // encapsulation overhead
}

TEST(Shaping, DecoyIntensityScalesAddedTraffic) {
  const auto home = small_home();
  DecoyFlows defense;
  Rng low_rng(23), high_rng(23);
  const auto low = defense.apply(home, 900.0, 0.2, low_rng);
  const auto high = defense.apply(home, 900.0, 1.0, high_rng);
  EXPECT_GT(high.added_bytes, low.added_bytes);
  EXPECT_GT(low.added_bytes, 0.0);
}

// --- streaming parity on shaped captures ------------------------------------

TEST(Shaping, ShapedCapturesKeepAccumulatorParity) {
  const auto home = small_home(29, 1200.0);
  const double window_s = 300.0;
  for (const auto& name : traffic_defense_names()) {
    const auto defense = make_traffic_defense(name);
    Rng rng(31);
    const auto shaped = defense->apply(home, 1200.0, 0.7, rng);
    const auto wan = wan_view(shaped.packets);
    for (const auto& device : home.devices) {
      const auto rows = windowed_features(wan, device.ip, 1200.0, window_s,
                                          /*keep_idle_windows=*/true);
      ASSERT_EQ(rows.size(), 4u) << name;
      for (const auto& row : rows) {
        const double t0 = static_cast<double>(row.window_index) * window_s;
        EXPECT_EQ(row.features, extract_window_features(wan, device.ip, t0,
                                                        t0 + window_s))
            << name << " device " << device.name << " window "
            << row.window_index;
      }
    }
  }
}

TEST(Shaping, WindowBoundaryPacketsStayExclusive) {
  // A padding packet landing exactly on a window boundary t1 belongs to the
  // *next* window in both extraction paths ([t0, t1) windows).
  const auto dev = make_ip(10, 0, 0, 10);
  const auto cloud = make_ip(52, 20, 0, 1);
  std::vector<Packet> packets{
      {1.0, dev, cloud, 40000, 443, Protocol::kTcp, 1400},
      {300.0, dev, cloud, 40000, 443, Protocol::kTcp, 1400},  // == t1
      {301.0, dev, cloud, 40000, 443, Protocol::kTcp, 1400},
  };
  const auto window0 = extract_window_features(packets, dev, 0.0, 300.0);
  EXPECT_DOUBLE_EQ(window0[kFeaturePktRateUp] * 300.0, 1.0);
  const auto window1 = extract_window_features(packets, dev, 300.0, 600.0);
  EXPECT_DOUBLE_EQ(window1[kFeaturePktRateUp] * 300.0, 2.0);

  const auto rows = windowed_features(packets, dev, 600.0, 300.0,
                                      /*keep_idle_windows=*/true);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].features, window0);
  EXPECT_EQ(rows[1].features, window1);
}

// --- recovery features ------------------------------------------------------

TEST(Arena, RecoveryFeaturesSeePeriodicStructure) {
  const auto dev = make_ip(10, 0, 0, 10);
  const auto cloud = make_ip(52, 20, 0, 1);
  std::vector<Packet> packets;
  for (int i = 0; i < 30; ++i) {
    packets.push_back(Packet{static_cast<double>(i), dev, cloud, 40000, 443,
                             Protocol::kTcp, 1400});
  }
  const auto f = extract_recovery_features(packets, dev, 0.0, 30.0);
  ASSERT_EQ(f.size(), recovery_feature_names().size());
  EXPECT_DOUBLE_EQ(f[0], 1.0);  // every IAT in the modal (1 s) bin
  EXPECT_DOUBLE_EQ(f[1], 0.0);  // no sub-modal bursts
  EXPECT_DOUBLE_EQ(f[2], 1.0);  // 1 packet/s fine burst rate
  EXPECT_DOUBLE_EQ(f[3], 1.0);  // one wire size
}

TEST(Arena, RecoveryFeaturesFlagQueueBursts) {
  const auto dev = make_ip(10, 0, 0, 10);
  const auto cloud = make_ip(52, 20, 0, 1);
  std::vector<Packet> packets;
  for (int i = 0; i < 20; ++i) {
    packets.push_back(Packet{static_cast<double>(i), dev, cloud, 40000, 443,
                             Protocol::kTcp, 1400});
  }
  // A shaper-overflow burst: 5 packets 10 ms apart inside one gap.
  for (int i = 0; i < 5; ++i) {
    packets.push_back(Packet{20.5 + 0.01 * i, dev, cloud, 40000, 443,
                             Protocol::kTcp, 700});
  }
  sort_by_time(packets);
  const auto f = extract_recovery_features(packets, dev, 0.0, 30.0);
  EXPECT_GT(f[1], 0.0);   // sub-modal IATs present
  EXPECT_GT(f[2], 1.0);   // burst rate above the 1 s cadence
  EXPECT_LT(f[3], 1.0);   // second wire size dilutes the modal fraction
}

TEST(Arena, RecoveryFeaturesEmptyWindowIsZero) {
  const auto f = extract_recovery_features({}, make_ip(10, 0, 0, 10), 0.0,
                                           300.0);
  EXPECT_EQ(f, std::vector<double>(recovery_feature_names().size(), 0.0));
}

// --- the arena --------------------------------------------------------------

ArenaOptions tiny_arena() {
  ArenaOptions options;
  options.train_instances_per_type = 1;
  options.test_instances_per_type = 1;
  options.duration_s = 600.0;
  options.window_s = 300.0;
  options.defenses = {"constant-rate", "vpn"};
  options.intensities = {0.0, 1.0};
  return options;
}

TEST(Arena, BitwiseIdenticalAcrossPoolWidths) {
  const auto options = tiny_arena();
  const auto base = run_arena(options);
  ASSERT_EQ(base.cells.size(), 4u);
  EXPECT_EQ(describe_divergence(base, run_arena_serial(options)), "");
  for (const std::size_t width : {std::size_t{1}, std::size_t{4}}) {
    par::ThreadPool pool(width);
    par::ScopedPoolOverride override_pool(pool);
    EXPECT_EQ(describe_divergence(base, run_arena(options)), "")
        << "pool width " << width;
  }
}

TEST(Arena, CellsCarryTheKnobReadout) {
  const auto result = run_arena(tiny_arena());
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.attacks.size(), fingerprint_attacks().size());
    if (cell.intensity == 0.0) {
      EXPECT_EQ(cell.added_bytes_fraction, 0.0) << cell.defense;
      EXPECT_EQ(cell.mean_added_latency_s, 0.0) << cell.defense;
    }
    for (const auto& score : cell.attacks) {
      EXPECT_GE(score.mcc, -1.0);
      EXPECT_LE(score.mcc, 1.0);
      EXPECT_GE(score.accuracy, 0.0);
      EXPECT_LE(score.accuracy, 1.0);
    }
  }
}

TEST(Arena, AttackRegistry) {
  EXPECT_EQ(make_fingerprint_attack("adaptive-knn").backend,
            SupervisedFingerprintAttack::Backend::kKnn);
  EXPECT_TRUE(make_fingerprint_attack("adaptive-forest+recovery").recovery);
  EXPECT_FALSE(make_fingerprint_attack("naive-forest").adaptive);
  EXPECT_THROW(make_fingerprint_attack("psychic"), InvalidArgument);
}

TEST(Arena, RejectsBadOptions) {
  auto options = tiny_arena();
  options.intensities = {1.5};
  EXPECT_THROW(run_arena(options), InvalidArgument);
  options = tiny_arena();
  options.window_s = 0.0;
  EXPECT_THROW(run_arena(options), InvalidArgument);
  options = tiny_arena();
  options.defenses = {"warp-drive"};
  EXPECT_THROW(run_arena(options), InvalidArgument);
}

// --- campaign net axis ------------------------------------------------------

TEST(NetAxis, ConfigRoundTripsCanonically) {
  campaign::NetArenaConfig config;
  config.defenses = {"vpn", "constant-rate"};
  config.intensities = {0.0, 0.125, 1.0};
  config.duration_s = 1234.5;
  config.base_seed = 99;
  const auto text = campaign::canonical_net_text(config);
  const auto reparsed = campaign::parse_net_config(text);
  EXPECT_EQ(campaign::canonical_net_text(reparsed), text);
  EXPECT_EQ(campaign::net_config_hash(reparsed),
            campaign::net_config_hash(config));
}

TEST(NetAxis, ParserRejectsBadInput) {
  EXPECT_THROW(campaign::parse_net_config("unknown_key = 1"),
               InvalidArgument);
  EXPECT_THROW(campaign::parse_net_config("intensities = 2"),
               InvalidArgument);
  EXPECT_THROW(campaign::parse_net_config("window_s = 0"), InvalidArgument);
  EXPECT_THROW(campaign::parse_net_config("duration_s = nope"),
               InvalidArgument);
}

TEST(NetAxis, FrontierCsvIsByteStable) {
  campaign::NetArenaConfig config;
  config.defenses = {"constant-rate", "vpn"};
  config.intensities = {0.0, 1.0};
  config.train_instances_per_type = 1;
  config.test_instances_per_type = 1;
  config.duration_s = 600.0;
  config.window_s = 300.0;
  const auto result = net::run_arena(campaign::to_arena_options(config));
  std::ostringstream a, b;
  campaign::write_net_frontier_csv(a, config, result);
  campaign::write_net_frontier_csv(b, config, result);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("defense,intensity,"), std::string::npos);
  // One header comment + one column header + one line per cell.
  std::size_t lines = 0;
  for (char c : a.str()) lines += c == '\n';
  EXPECT_EQ(lines, 2u + result.cells.size());
}

}  // namespace
}  // namespace pmiot::net
