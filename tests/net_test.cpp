// Tests for the IoT network substrate: packets/flows, device models,
// features, fingerprinting, anomaly detection, and the smart gateway.
#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "ml/random_forest.h"
#include "ml/metrics.h"
#include "net/anomaly.h"
#include "net/device.h"
#include "net/features.h"
#include "net/fingerprint.h"
#include "net/gateway.h"
#include <sstream>

#include "net/capture.h"
#include "net/packet.h"
#include "net/window_accumulator.h"

namespace pmiot::net {
namespace {

TEST(Ip, RoundTripAndLanCheck) {
  const auto ip = make_ip(10, 0, 0, 42);
  EXPECT_EQ(ip_to_string(ip), "10.0.0.42");
  EXPECT_TRUE(is_lan(ip));
  EXPECT_FALSE(is_lan(make_ip(52, 20, 0, 1)));
  EXPECT_THROW(make_ip(256, 0, 0, 1), InvalidArgument);
}

TEST(FlowTable, AggregatesBidirectionalFlow) {
  FlowTable table;
  const auto dev = make_ip(10, 0, 0, 10);
  const auto cloud = make_ip(52, 20, 0, 1);
  table.add(Packet{0.0, dev, cloud, 40010, 443, Protocol::kTcp, 100});
  table.add(Packet{0.1, cloud, dev, 443, 40010, Protocol::kTcp, 60});
  table.add(Packet{0.2, dev, cloud, 40010, 443, Protocol::kTcp, 200});
  ASSERT_EQ(table.flows().size(), 1u);
  const auto& flow = table.flows()[0];
  EXPECT_EQ(flow.packets(), 3u);
  EXPECT_EQ(flow.bytes(), 360u);
  EXPECT_NEAR(flow.duration_s(), 0.2, 1e-9);
  // The canonical key has the smaller endpoint first (the LAN 10.x side).
  EXPECT_EQ(flow.key.ip_a, dev);
  EXPECT_EQ(flow.packets_ab, 2u);
  EXPECT_EQ(flow.packets_ba, 1u);
}

TEST(FlowTable, IdleTimeoutStartsNewFlow) {
  FlowTable table(30.0);
  const auto dev = make_ip(10, 0, 0, 10);
  const auto cloud = make_ip(52, 20, 0, 1);
  table.add(Packet{0.0, dev, cloud, 1, 443, Protocol::kTcp, 100});
  table.add(Packet{100.0, dev, cloud, 1, 443, Protocol::kTcp, 100});
  EXPECT_EQ(table.flows().size(), 2u);
}

TEST(FlowTable, DistinguishesProtocols) {
  FlowTable table;
  const auto dev = make_ip(10, 0, 0, 10);
  const auto cloud = make_ip(52, 20, 0, 1);
  table.add(Packet{0.0, dev, cloud, 1, 443, Protocol::kTcp, 100});
  table.add(Packet{0.1, dev, cloud, 1, 443, Protocol::kUdp, 100});
  EXPECT_EQ(table.flows().size(), 2u);
}

TEST(Device, ProfilesDifferByType) {
  Rng rng(1);
  const auto camera = make_device(DeviceType::kCamera, 0, rng);
  const auto lock = make_device(DeviceType::kDoorLock, 1, rng);
  EXPECT_GT(camera.stream_pkt_per_s, 0.0);
  EXPECT_DOUBLE_EQ(lock.stream_pkt_per_s, 0.0);
  EXPECT_LT(camera.heartbeat_period_s, lock.heartbeat_period_s);
  EXPECT_NE(camera.ip, lock.ip);
}

TEST(Device, HeartbeatCountMatchesPeriod) {
  Rng rng(2);
  auto profile = make_device(DeviceType::kSmartPlug, 0, rng);
  profile.telemetry_period_s = 0.0;  // isolate heartbeats
  profile.event_rate_per_hour = 0.0;
  profile.dns_rate_per_hour = 0.0;
  const double duration = 3600.0;
  const auto packets = simulate_device(profile, duration, rng);
  // Each heartbeat is a 2-packet exchange.
  const double expected = duration / profile.heartbeat_period_s;
  EXPECT_NEAR(static_cast<double>(packets.size()) / 2.0, expected,
              expected * 0.3);
}

TEST(Device, PacketsAreTimeOrderedAndBounded) {
  Rng rng(3);
  const auto profile = make_device(DeviceType::kCamera, 0, rng);
  const auto packets = simulate_device(profile, 1800.0, rng);
  ASSERT_FALSE(packets.empty());
  for (std::size_t i = 1; i < packets.size(); ++i) {
    EXPECT_GE(packets[i].timestamp_s, packets[i - 1].timestamp_s);
  }
  for (const auto& p : packets) {
    EXPECT_GE(p.timestamp_s, 0.0);
    EXPECT_LT(p.timestamp_s, 1800.0 + 30.0);  // exchange tails may run over
    EXPECT_GT(p.size_bytes, 0);
    EXPECT_LE(p.size_bytes, 1400);
  }
}

TEST(Device, ScannerTouchesManyDestinations) {
  Rng rng(4);
  auto profile = make_device(DeviceType::kCamera, 0, rng);
  profile.infection = Infection::kScanner;
  profile.infection_start_s = 0.0;
  const auto packets = simulate_device(profile, 600.0, rng);
  std::set<std::uint32_t> destinations;
  for (const auto& p : packets) {
    if (p.src_ip == profile.ip) destinations.insert(p.dst_ip);
  }
  EXPECT_GT(destinations.size(), 100u);
}

TEST(Device, DdosBotFloodsOneVictim) {
  Rng rng(5);
  auto profile = make_device(DeviceType::kSmartPlug, 0, rng);
  profile.infection = Infection::kDdosBot;
  profile.infection_start_s = 0.0;
  const auto packets = simulate_device(profile, 600.0, rng);
  std::size_t flood = 0;
  for (const auto& p : packets) {
    if (p.dst_ip == make_ip(203, 0, 113, 7)) ++flood;
  }
  EXPECT_GT(flood, 500u);
}

TEST(Device, InfectionStartsOnTime) {
  Rng rng(6);
  auto profile = make_device(DeviceType::kSpeaker, 0, rng);
  profile.infection = Infection::kExfiltrator;
  profile.infection_start_s = 300.0;
  const auto packets = simulate_device(profile, 600.0, rng);
  const auto sink = make_ip(198, 51, 100, 23);
  for (const auto& p : packets) {
    if (p.dst_ip == sink) {
      EXPECT_GE(p.timestamp_s, 300.0);
    }
  }
}

TEST(HomeNetwork, AllDevicesEmit) {
  Rng rng(7);
  const auto home = simulate_home_network(1, 900.0, rng);
  EXPECT_EQ(home.devices.size(), static_cast<std::size_t>(kNumDeviceTypes));
  for (const auto& device : home.devices) {
    bool found = false;
    for (const auto& p : home.packets) {
      if (p.src_ip == device.ip) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << device.name;
  }
}

TEST(Capture, RoundTripsPackets) {
  Rng rng(21);
  const auto profile = make_device(DeviceType::kThermostat, 0, rng);
  const auto packets = simulate_device(profile, 600.0, rng);
  std::ostringstream os;
  write_capture(os, packets);
  std::istringstream is(os.str());
  const auto loaded = read_capture(is);
  ASSERT_EQ(loaded.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_NEAR(loaded[i].timestamp_s, packets[i].timestamp_s, 1e-6);
    EXPECT_EQ(loaded[i].src_ip, packets[i].src_ip);
    EXPECT_EQ(loaded[i].dst_ip, packets[i].dst_ip);
    EXPECT_EQ(loaded[i].src_port, packets[i].src_port);
    EXPECT_EQ(loaded[i].dst_port, packets[i].dst_port);
    EXPECT_EQ(loaded[i].protocol, packets[i].protocol);
    EXPECT_EQ(loaded[i].size_bytes, packets[i].size_bytes);
  }
}

TEST(Capture, RejectsMalformedInput) {
  {
    std::istringstream is("nope\n");
    EXPECT_THROW(read_capture(is), pmiot::InvalidArgument);
  }
  {
    std::istringstream is(
        "# pmiot-capture v1\n"
        "0.5 icmp 10.0.0.1:1 > 10.0.0.2:2 100\n");
    EXPECT_THROW(read_capture(is), pmiot::InvalidArgument);
  }
  {
    std::istringstream is(
        "# pmiot-capture v1\n"
        "0.5 tcp 10.0.0.1:99999 > 10.0.0.2:2 100\n");
    EXPECT_THROW(read_capture(is), pmiot::InvalidArgument);
  }
}

TEST(Capture, FeaturesIdenticalAfterRoundTrip) {
  Rng rng(22);
  const auto profile = make_device(DeviceType::kCamera, 0, rng);
  const auto packets = simulate_device(profile, 600.0, rng);
  std::ostringstream os;
  write_capture(os, packets);
  std::istringstream is(os.str());
  const auto loaded = read_capture(is);
  const auto a = extract_window_features(packets, profile.ip, 0.0, 600.0);
  const auto b = extract_window_features(loaded, profile.ip, 0.0, 600.0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-6);
}

// --- features --------------------------------------------------------------------

TEST(Features, SilentDeviceIsAllZero) {
  const std::vector<Packet> none;
  const auto f =
      extract_window_features(none, make_ip(10, 0, 0, 10), 0.0, 600.0);
  ASSERT_EQ(f.size(), feature_names().size());
  for (double v : f) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Features, RatesAndDirectionality) {
  const auto dev = make_ip(10, 0, 0, 10);
  const auto cloud = make_ip(52, 20, 0, 1);
  std::vector<Packet> packets;
  for (int i = 0; i < 60; ++i) {
    packets.push_back(Packet{i * 10.0, dev, cloud, 1, 443, Protocol::kTcp, 1000});
  }
  const auto f = extract_window_features(packets, dev, 0.0, 600.0);
  EXPECT_NEAR(f[0], 0.1, 1e-9);        // pkt_rate_up
  EXPECT_DOUBLE_EQ(f[1], 0.0);         // nothing downstream
  EXPECT_NEAR(f[2], 100.0, 1e-9);      // byte_rate_up
  EXPECT_DOUBLE_EQ(f[7], 1.0);         // all bytes upstream
  EXPECT_DOUBLE_EQ(f[9], 1.0);         // one remote
}

TEST(Features, PeriodicTrafficHasLowIatCv) {
  const auto dev = make_ip(10, 0, 0, 10);
  const auto cloud = make_ip(52, 20, 0, 1);
  std::vector<Packet> regular, bursty;
  for (int i = 0; i < 60; ++i) {
    regular.push_back(Packet{i * 10.0, dev, cloud, 1, 443, Protocol::kTcp, 100});
    // Bursty: all packets in the first minute.
    bursty.push_back(Packet{i * 1.0, dev, cloud, 1, 443, Protocol::kTcp, 100});
  }
  const auto fr = extract_window_features(regular, dev, 0.0, 600.0);
  const auto fb = extract_window_features(bursty, dev, 0.0, 600.0);
  EXPECT_LT(fr[13], 0.1);                // iat_cv for metronome traffic
  EXPECT_GT(fb[14], fr[14]);             // burst rate higher for bursty
}

TEST(Features, FlowCountTracksDistinctFlows) {
  const auto dev = make_ip(10, 0, 0, 10);
  std::vector<Packet> packets;
  // Three distinct remote endpoints -> three flows.
  for (int r = 0; r < 3; ++r) {
    const auto remote = make_ip(52, 20, 0, 10 + r);
    for (int i = 0; i < 5; ++i) {
      packets.push_back(Packet{r * 10.0 + i, dev, remote, 1,
                               static_cast<std::uint16_t>(443), Protocol::kTcp,
                               100});
    }
  }
  const auto f = extract_window_features(packets, dev, 0.0, 600.0);
  EXPECT_DOUBLE_EQ(f[16], 3.0);
}

TEST(Features, WindowedSkipsSilentWindows) {
  Rng rng(8);
  auto profile = make_device(DeviceType::kDoorLock, 0, rng);
  const auto packets = simulate_device(profile, 3600.0, rng);
  const auto rows = windowed_features(packets, profile.ip, 3600.0, 600.0);
  EXPECT_LE(rows.size(), 6u);
  for (const auto& row : rows) {
    EXPECT_LT(row.window_index, 6u);
    EXPECT_EQ(row.features.size(), feature_names().size());
  }
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i - 1].window_index, rows[i].window_index);
  }
}

TEST(Features, DnsRateCountsExchangesNotPackets) {
  const auto dev = make_ip(10, 0, 0, 10);
  const auto router = make_ip(10, 0, 0, 1);
  std::vector<Packet> packets;
  // Two DNS exchanges in one minute: each is a query up plus a response
  // down. The rate must count exchanges (2/min), not packets (4/min).
  for (int i = 0; i < 2; ++i) {
    packets.push_back(
        Packet{5.0 + i * 20.0, dev, router, 40000, 53, Protocol::kUdp, 60});
    packets.push_back(Packet{5.1 + i * 20.0, router, dev, 53, 40000,
                             Protocol::kUdp, 140});
  }
  const auto f = extract_window_features(packets, dev, 0.0, 60.0);
  EXPECT_DOUBLE_EQ(f[15], 2.0);
}

TEST(Features, BurstRateNormalizesTruncatedBucket) {
  const auto dev = make_ip(10, 0, 0, 10);
  const auto cloud = make_ip(52, 20, 0, 1);
  // Window [0, 15): the final bucket [10, 15) is only 5 s wide. Five
  // packets there are a rate of 1/s, not 0.5/s.
  std::vector<Packet> packets;
  for (int i = 0; i < 5; ++i) {
    packets.push_back(
        Packet{10.0 + i, dev, cloud, 1, 443, Protocol::kTcp, 100});
  }
  const auto f = extract_window_features(packets, dev, 0.0, 15.0);
  EXPECT_DOUBLE_EQ(f[14], 1.0);

  // A packet just before the window end still lands in the last bucket
  // (no out-of-range bucket index), and one at the end is excluded.
  std::vector<Packet> edge;
  edge.push_back(Packet{599.999, dev, cloud, 1, 443, Protocol::kTcp, 100});
  edge.push_back(Packet{600.0, dev, cloud, 1, 443, Protocol::kTcp, 100});
  const auto g = extract_window_features(edge, dev, 0.0, 600.0);
  EXPECT_DOUBLE_EQ(g[0], 1.0 / 600.0);
  EXPECT_DOUBLE_EQ(g[14], 0.1);
}

TEST(Features, WindowedKeepsIndicesAcrossIdleGaps) {
  const auto dev = make_ip(10, 0, 0, 10);
  const auto cloud = make_ip(52, 20, 0, 1);
  // Traffic in windows 0 and 3 only; windows 1-2 are idle.
  std::vector<Packet> packets;
  packets.push_back(Packet{10.0, dev, cloud, 1, 443, Protocol::kTcp, 100});
  packets.push_back(Packet{1810.0, dev, cloud, 1, 443, Protocol::kTcp, 100});

  const auto rows = windowed_features(packets, dev, 2400.0, 600.0);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].window_index, 0u);
  EXPECT_EQ(rows[1].window_index, 3u);

  const auto all = windowed_features(packets, dev, 2400.0, 600.0,
                                     /*keep_idle_windows=*/true);
  ASSERT_EQ(all.size(), 4u);
  for (std::size_t w = 0; w < all.size(); ++w) {
    EXPECT_EQ(all[w].window_index, w);
  }
  for (double v : all[1].features) EXPECT_DOUBLE_EQ(v, 0.0);
  for (double v : all[2].features) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Features, RouterIpIsConfigurable) {
  // A deployment whose gateway is not 10.0.0.1 must not count the router
  // as an ordinary LAN peer (lan_fraction) in either extraction path.
  const auto dev = make_ip(10, 0, 0, 10);
  const auto router = make_ip(10, 0, 0, 254);
  std::vector<Packet> packets{
      {1.0, dev, router, 40000, 53, Protocol::kUdp, 60},
      {2.0, dev, make_ip(52, 20, 0, 1), 40000, 443, Protocol::kTcp, 500},
  };
  const std::size_t lan_fraction = 11;

  // Default router identity: 10.0.0.254 looks like a LAN peer.
  const auto misread = extract_window_features(packets, dev, 0.0, 600.0);
  EXPECT_DOUBLE_EQ(misread[lan_fraction], 0.5);
  // Threading the real router through excludes it, like 10.0.0.1 would be.
  const auto read = extract_window_features(packets, dev, 0.0, 600.0, router);
  EXPECT_DOUBLE_EQ(read[lan_fraction], 0.0);

  // Both paths agree for the non-default router too.
  const auto rows = windowed_features(packets, dev, 600.0, 600.0,
                                      /*keep_idle_windows=*/false, router);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].features, read);
  WindowAccumulator accumulator(dev, 600.0, /*keep_idle_windows=*/false,
                                router);
  for (const auto& p : packets) accumulator.add(p);
  EXPECT_EQ(accumulator.finish(600.0).at(0).features, read);
}

TEST(Features, DefaultRouterConstantMatchesGatewayDefault) {
  EXPECT_EQ(kDefaultRouterIp, make_ip(10, 0, 0, 1));
  EXPECT_EQ(GatewayOptions{}.router_ip, kDefaultRouterIp);
}

// --- the streaming accumulator ----------------------------------------------------

// Random gateway-style traffic exercising every feature: cloud exchanges,
// DNS, LAN chatter, bursts, idle stretches, and other devices' packets the
// accumulator must ignore.
std::vector<Packet> random_trace(Rng& rng, std::uint32_t device_ip,
                                 double duration_s) {
  std::vector<Packet> out;
  const auto cloud = make_ip(52, 20, 0, 1);
  const auto router = make_ip(10, 0, 0, 1);
  const int n = static_cast<int>(rng.uniform_int(50, 400));
  for (int i = 0; i < n; ++i) {
    // Cluster some traffic to create bursts and leave idle windows.
    double t = rng.bernoulli(0.3)
                   ? rng.uniform(0.0, duration_s * 0.2)
                   : rng.uniform(0.0, duration_s * 1.05);
    const double roll = rng.uniform();
    const auto size = static_cast<int>(rng.uniform_int(40, 1400));
    if (roll < 0.35) {  // upstream to the cloud
      out.push_back(Packet{t, device_ip, cloud,
                           static_cast<std::uint16_t>(rng.uniform_int(1024, 65535)),
                           static_cast<std::uint16_t>(rng.bernoulli(0.5) ? 443 : 8883),
                           rng.bernoulli(0.3) ? Protocol::kUdp : Protocol::kTcp,
                           size});
    } else if (roll < 0.55) {  // downstream
      out.push_back(Packet{t, cloud, device_ip, 443,
                           static_cast<std::uint16_t>(rng.uniform_int(1024, 65535)),
                           Protocol::kTcp, size});
    } else if (roll < 0.7) {  // DNS exchange with the router
      out.push_back(Packet{t, device_ip, router, 40000, 53, Protocol::kUdp, 60});
      out.push_back(Packet{t + 0.05, router, device_ip, 53, 40000,
                           Protocol::kUdp, 140});
    } else if (roll < 0.85) {  // LAN chatter with another IoT host
      const auto peer =
          make_ip(10, 0, 0, static_cast<int>(rng.uniform_int(11, 40)));
      out.push_back(Packet{t, device_ip, peer, 8883, 8883, Protocol::kTcp, 150});
    } else {  // unrelated traffic the accumulator must skip
      out.push_back(Packet{t, make_ip(10, 0, 0, 99), cloud, 5000, 443,
                           Protocol::kTcp, size});
    }
  }
  sort_by_time(out);
  return out;
}

TEST(WindowAccumulator, MatchesReferenceBitForBit) {
  const auto dev = make_ip(10, 0, 0, 10);
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(100 + seed);
    // Odd window lengths exercise the truncated final burst bucket; the
    // duration leaves a partial trailing window the pipeline must drop.
    const double window_s = (seed % 3 == 0) ? 47.0 : 60.0;
    const double duration_s = 600.0 + static_cast<double>(seed % 2) * 33.0;
    const auto packets = random_trace(rng, dev, duration_s);

    const auto rows = windowed_features(packets, dev, duration_s, window_s,
                                        /*keep_idle_windows=*/true);
    std::size_t expected_windows = 0;
    while (static_cast<double>(expected_windows + 1) * window_s <=
           duration_s) {
      ++expected_windows;
    }
    ASSERT_EQ(rows.size(), expected_windows) << "seed " << seed;
    for (std::size_t w = 0; w < rows.size(); ++w) {
      const auto reference = extract_window_features(
          packets, dev, static_cast<double>(w) * window_s,
          static_cast<double>(w + 1) * window_s);
      ASSERT_EQ(rows[w].features.size(), reference.size());
      for (std::size_t k = 0; k < reference.size(); ++k) {
        EXPECT_EQ(rows[w].features[k], reference[k])
            << "seed " << seed << " window " << w << " feature "
            << feature_names()[k];
      }
    }
  }
}

TEST(WindowAccumulator, MatchesReferenceOnSimulatedHome) {
  Rng rng(31);
  const auto home = simulate_home_network(1, 1800.0, rng);
  for (const auto& device : home.devices) {
    const auto rows = windowed_features(home.packets, device.ip, 1800.0,
                                        600.0, /*keep_idle_windows=*/true);
    ASSERT_EQ(rows.size(), 3u);
    for (std::size_t w = 0; w < rows.size(); ++w) {
      const auto reference = extract_window_features(
          home.packets, device.ip, static_cast<double>(w) * 600.0,
          static_cast<double>(w + 1) * 600.0);
      for (std::size_t k = 0; k < reference.size(); ++k) {
        EXPECT_EQ(rows[w].features[k], reference[k]) << device.name;
      }
    }
  }
}

TEST(WindowAccumulator, RejectsOutOfOrderPackets) {
  const auto dev = make_ip(10, 0, 0, 10);
  const auto cloud = make_ip(52, 20, 0, 1);
  WindowAccumulator acc(dev, 600.0);
  acc.add(Packet{100.0, dev, cloud, 1, 443, Protocol::kTcp, 100});
  EXPECT_THROW(acc.add(Packet{50.0, dev, cloud, 1, 443, Protocol::kTcp, 100}),
               InvalidArgument);
}

// --- fingerprinting ------------------------------------------------------------------

TEST(Fingerprint, DatasetIsBalancedAcrossTypes) {
  Rng rng(9);
  FingerprintOptions options;
  options.instances_per_type = 2;
  options.duration_s = 3600.0;
  const auto data = build_fingerprint_dataset(options, rng);
  EXPECT_EQ(data.num_classes(), kNumDeviceTypes);
  EXPECT_EQ(data.width(), feature_names().size());
  std::vector<int> counts(static_cast<std::size_t>(kNumDeviceTypes), 0);
  for (int label : data.labels) ++counts[static_cast<std::size_t>(label)];
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(Fingerprint, RandomForestIdentifiesDevices) {
  Rng rng(10);
  FingerprintOptions options;
  options.instances_per_type = 3;
  options.duration_s = 2 * 3600.0;
  auto data = build_fingerprint_dataset(options, rng);
  auto split = ml::train_test_split(data, 0.3, rng);
  ml::RandomForest forest;
  forest.fit(split.train);
  const auto pred = forest.predict_all(split.test);
  ml::ConfusionMatrix cm(pred, split.test.labels, kNumDeviceTypes);
  EXPECT_GT(cm.accuracy(), 0.85);
}

// --- anomaly detection ---------------------------------------------------------------

struct AnomalyScene {
  ml::Dataset clean;
  AnomalyDetector detector;
};

AnomalyScene trained_detector(std::uint64_t seed) {
  Rng rng(seed);
  FingerprintOptions options;
  options.instances_per_type = 3;
  options.duration_s = 2 * 3600.0;
  AnomalyScene scene{build_fingerprint_dataset(options, rng), {}};
  scene.detector.fit(scene.clean);
  return scene;
}

TEST(Anomaly, CleanWindowsScoreLow) {
  const auto scene = trained_detector(11);
  double max_clean = 0.0;
  for (std::size_t i = 0; i < scene.clean.size(); ++i) {
    max_clean = std::max(
        max_clean,
        scene.detector.score(scene.clean.rows[i], scene.clean.labels[i]));
  }
  EXPECT_LT(max_clean, 6.0);
}

TEST(Anomaly, GeneralizesToUnseenInstances) {
  const auto scene = trained_detector(11);
  Rng rng(99);
  FingerprintOptions options;
  options.instances_per_type = 2;
  options.duration_s = 2 * 3600.0;
  const auto fresh = build_fingerprint_dataset(options, rng);
  int over_threshold = 0;
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    if (scene.detector.score(fresh.rows[i], fresh.labels[i]) > 6.0) {
      ++over_threshold;
    }
  }
  // Fresh, clean device instances should almost never read as anomalous.
  EXPECT_LT(static_cast<double>(over_threshold) /
                static_cast<double>(fresh.size()),
            0.02);
}

TEST(Anomaly, InfectedWindowsScoreHigh) {
  auto scene = trained_detector(12);
  Rng rng(13);
  for (auto infection : {Infection::kScanner, Infection::kDdosBot,
                         Infection::kExfiltrator}) {
    // Exfiltration from a camera hides inside its own upload stream (a
    // documented limitation); score attacks on a quiet device class, plus
    // the loud attacks on the camera below.
    auto profile = make_device(DeviceType::kSmartPlug, 0, rng);
    profile.infection = infection;
    profile.infection_start_s = 0.0;
    const auto packets = simulate_device(profile, 1200.0, rng);
    const auto f = extract_window_features(packets, profile.ip, 0.0, 600.0);
    EXPECT_GT(
        scene.detector.score(f, static_cast<int>(DeviceType::kSmartPlug)),
        6.0)
        << static_cast<int>(infection);
  }
  for (auto infection : {Infection::kScanner, Infection::kDdosBot}) {
    auto profile = make_device(DeviceType::kCamera, 1, rng);
    profile.infection = infection;
    profile.infection_start_s = 0.0;
    const auto packets = simulate_device(profile, 1200.0, rng);
    const auto f = extract_window_features(packets, profile.ip, 0.0, 600.0);
    EXPECT_GT(scene.detector.score(f, static_cast<int>(DeviceType::kCamera)),
              6.0)
        << static_cast<int>(infection);
  }
}

TEST(Anomaly, RequiresFit) {
  AnomalyDetector detector;
  EXPECT_THROW(detector.score(std::vector<double>(16, 0.0), 0),
               InvalidArgument);
}

// --- gateway ----------------------------------------------------------------------

TEST(Gateway, QuarantinesInfectedDeviceOnly) {
  Rng rng(14);
  FingerprintOptions options;
  options.instances_per_type = 3;
  options.duration_s = 2 * 3600.0;
  auto data = build_fingerprint_dataset(options, rng);
  ml::RandomForest forest;
  forest.fit(data);
  AnomalyDetector detector;
  detector.fit(data);

  Rng home_rng(15);
  auto home = simulate_home_network(1, 2 * 3600.0, home_rng);
  // Infect the camera halfway through.
  auto infected = home.devices[0];
  infected.infection = Infection::kDdosBot;
  infected.infection_start_s = 3600.0;
  const auto extra = simulate_device(infected, 2 * 3600.0, home_rng);
  home.packets.insert(home.packets.end(), extra.begin(), extra.end());
  sort_by_time(home.packets);

  SmartGateway gateway(forest, detector, GatewayOptions{});
  for (const auto& device : home.devices) {
    gateway.register_device(device.ip, device.name);
  }
  const auto report = gateway.process(home.packets, 2 * 3600.0);

  int quarantined = 0;
  for (const auto& verdict : report.verdicts) {
    if (verdict.final_zone == Zone::kQuarantined) {
      ++quarantined;
      EXPECT_EQ(verdict.device, home.devices[0].name);
      EXPECT_GE(verdict.quarantined_at_s, 3600.0);
    }
  }
  EXPECT_EQ(quarantined, 1);
  EXPECT_GT(report.quarantine_packets_dropped, 0u);
}

TEST(Gateway, IdentifiesDeviceTypes) {
  Rng rng(16);
  FingerprintOptions options;
  options.instances_per_type = 3;
  options.duration_s = 2 * 3600.0;
  auto data = build_fingerprint_dataset(options, rng);
  ml::RandomForest forest;
  forest.fit(data);
  AnomalyDetector detector;
  detector.fit(data);

  Rng home_rng(17);
  const auto home = simulate_home_network(1, 3600.0, home_rng);
  SmartGateway gateway(forest, detector, GatewayOptions{});
  for (const auto& device : home.devices) {
    gateway.register_device(device.ip, device.name);
  }
  const auto report = gateway.process(home.packets, 3600.0);
  int correct = 0;
  for (std::size_t i = 0; i < report.verdicts.size(); ++i) {
    if (report.verdicts[i].predicted_type ==
        static_cast<int>(home.devices[i].type)) {
      ++correct;
    }
  }
  EXPECT_GE(correct, kNumDeviceTypes - 2);
}

TEST(Gateway, RejectsWanDeviceRegistration) {
  Rng rng(18);
  FingerprintOptions options;
  options.instances_per_type = 2;
  options.duration_s = 3600.0;
  auto data = build_fingerprint_dataset(options, rng);
  ml::RandomForest forest;
  forest.fit(data);
  AnomalyDetector detector;
  detector.fit(data);
  SmartGateway gateway(forest, detector, GatewayOptions{});
  EXPECT_THROW(gateway.register_device(make_ip(8, 8, 8, 8), "rogue"),
               InvalidArgument);
}

// --- gateway policy ---------------------------------------------------------
//
// These tests isolate the quarantine state machine and counter derivation
// from real model behaviour: a classifier stub always predicts type 0, and
// the detector is fitted on two identical hand-built "normal" windows, so a
// replica of that window scores ~0 while anything else blows the envelope.

/// Predicts a fixed class regardless of input.
class FixedClassifier : public ml::Classifier {
 public:
  void fit(const ml::Dataset&) override {}
  int predict(std::span<const double>) const override { return 0; }
  std::string name() const override { return "fixed"; }
};

/// 40 evenly paced UDP packets to the cloud: the device's "normal" window.
void add_normal_window(std::vector<Packet>& packets, double t0,
                       std::uint32_t dev) {
  for (int i = 0; i < 40; ++i) {
    packets.push_back(Packet{t0 + 0.1 + 0.2 * i, dev, make_ip(52, 20, 0, 1),
                             40000, 443, Protocol::kUdp, 100});
  }
}

/// A port-scan-shaped window: `count` large TCP packets to many distinct
/// remotes and ports, far outside the trained envelope.
void add_attack_window(std::vector<Packet>& packets, double t0,
                       std::uint32_t dev, int count = 200) {
  for (int i = 0; i < count; ++i) {
    packets.push_back(
        Packet{t0 + 0.01 + 8.0 * i / count, dev, make_ip(52, 20, 0, 2 + i % 200),
               40000, static_cast<std::uint16_t>(1 + i), Protocol::kTcp, 1000});
  }
}

struct PolicyRig {
  FixedClassifier classifier;
  AnomalyDetector detector;
  GatewayOptions options;
};

PolicyRig make_policy_rig() {
  PolicyRig rig;
  rig.options.window_s = 10.0;
  rig.options.windows_to_quarantine = 2;
  rig.options.min_packets_to_score = 30;
  const auto dev = make_ip(10, 0, 0, 10);
  std::vector<Packet> train;
  add_normal_window(train, 0.0, dev);
  add_normal_window(train, 10.0, dev);
  sort_by_time(train);
  ml::Dataset clean;
  clean.append(extract_window_features(train, dev, 0.0, 10.0), 0);
  clean.append(extract_window_features(train, dev, 10.0, 20.0), 0);
  rig.detector.fit(clean);
  return rig;
}

TEST(GatewayPolicy, ShortCaptureReturnsEmptyReport) {
  auto rig = make_policy_rig();
  SmartGateway gateway(rig.classifier, rig.detector, rig.options);
  const auto dev = make_ip(10, 0, 0, 10);
  gateway.register_device(dev, "dev");
  std::vector<Packet> packets;
  packets.push_back(
      Packet{1.0, dev, make_ip(10, 0, 0, 99), 1000, 80, Protocol::kTcp, 100});
  packets.push_back(
      Packet{2.0, dev, make_ip(52, 20, 0, 1), 1000, 443, Protocol::kUdp, 100});
  // Shorter than one window: not an error — a default verdict per device,
  // no events, and least privilege still enforced.
  const auto report = gateway.process(packets, 5.0);
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].final_zone, Zone::kIot);
  EXPECT_EQ(report.verdicts[0].predicted_type, -1);
  EXPECT_TRUE(report.events.empty());
  EXPECT_EQ(report.lateral_packets_blocked, 1u);
  EXPECT_EQ(report.quarantine_packets_dropped, 0u);
}

TEST(GatewayPolicy, QuarantineExemptsUdpDnsOnly) {
  auto rig = make_policy_rig();
  SmartGateway gateway(rig.classifier, rig.detector, rig.options);
  const auto dev = make_ip(10, 0, 0, 10);
  const auto router = rig.options.router_ip;
  gateway.register_device(dev, "dev");
  std::vector<Packet> packets;
  add_attack_window(packets, 0.0, dev);
  add_attack_window(packets, 10.0, dev);  // quarantined at t = 20
  packets.push_back(Packet{25.0, dev, router, 5000, 53, Protocol::kUdp, 80});
  packets.push_back(Packet{26.0, dev, router, 5000, 53, Protocol::kTcp, 80});
  packets.push_back(
      Packet{27.0, dev, make_ip(52, 20, 0, 1), 5000, 443, Protocol::kUdp, 80});
  sort_by_time(packets);
  const auto report = gateway.process(packets, 40.0);
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].final_zone, Zone::kQuarantined);
  EXPECT_EQ(report.verdicts[0].quarantined_at_s, 20.0);
  // UDP:53 is the only carve-out; TCP:53 (DNS tunnels, zone transfers) and
  // everything else is dropped.
  EXPECT_EQ(report.quarantine_packets_dropped, 2u);
  EXPECT_EQ(report.lateral_packets_blocked, 0u);
}

TEST(GatewayPolicy, CountersAreMutuallyExclusive) {
  auto rig = make_policy_rig();
  SmartGateway gateway(rig.classifier, rig.detector, rig.options);
  const auto dev = make_ip(10, 0, 0, 10);
  const auto stranger = make_ip(10, 0, 0, 99);
  gateway.register_device(dev, "dev");
  std::vector<Packet> packets;
  add_attack_window(packets, 0.0, dev);
  add_attack_window(packets, 10.0, dev);  // quarantined at t = 20
  // Lateral before quarantine: blocked by least privilege.
  packets.push_back(Packet{5.0, dev, stranger, 5000, 80, Protocol::kTcp, 80});
  // Lateral after quarantine: dropped by quarantine, NOT double-counted.
  packets.push_back(Packet{25.0, dev, stranger, 5000, 80, Protocol::kTcp, 80});
  sort_by_time(packets);
  const auto report = gateway.process(packets, 40.0);
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].final_zone, Zone::kQuarantined);
  EXPECT_EQ(report.lateral_packets_blocked, 1u);
  EXPECT_EQ(report.quarantine_packets_dropped, 1u);
}

TEST(GatewayPolicy, BoundaryPacketAtQuarantineInstantIsDropped) {
  auto rig = make_policy_rig();
  SmartGateway gateway(rig.classifier, rig.detector, rig.options);
  const auto dev = make_ip(10, 0, 0, 10);
  gateway.register_device(dev, "dev");
  std::vector<Packet> packets;
  add_attack_window(packets, 0.0, dev);
  add_attack_window(packets, 10.0, dev);  // quarantined at t = 20
  packets.push_back(
      Packet{20.0, dev, make_ip(52, 20, 0, 1), 5000, 443, Protocol::kUdp, 80});
  sort_by_time(packets);
  const auto report = gateway.process(packets, 40.0);
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].quarantined_at_s, 20.0);
  // `quarantined_at` is inclusive: the packet at exactly t = 20 is dropped.
  EXPECT_EQ(report.quarantine_packets_dropped, 1u);
}

TEST(GatewayPolicy, RouterIpIsConfigurable) {
  auto rig = make_policy_rig();
  rig.options.router_ip = make_ip(10, 0, 0, 254);
  SmartGateway gateway(rig.classifier, rig.detector, rig.options);
  const auto dev = make_ip(10, 0, 0, 10);
  gateway.register_device(dev, "dev");
  EXPECT_THROW(gateway.register_device(make_ip(10, 0, 0, 254), "router"),
               InvalidArgument);
  std::vector<Packet> packets;
  // To the configured router: never lateral. To the *old* default router
  // address (now just an unregistered LAN host): lateral.
  packets.push_back(Packet{1.0, dev, make_ip(10, 0, 0, 254), 5000, 53,
                           Protocol::kUdp, 80});
  packets.push_back(
      Packet{2.0, dev, make_ip(10, 0, 0, 1), 5000, 80, Protocol::kTcp, 80});
  const auto report = gateway.process(packets, 5.0);
  EXPECT_EQ(report.lateral_packets_blocked, 1u);
}

TEST(GatewayPolicy, LateralAppliesOnlyToUnregisteredPeers) {
  auto rig = make_policy_rig();
  SmartGateway gateway(rig.classifier, rig.detector, rig.options);
  const auto dev = make_ip(10, 0, 0, 10);
  const auto peer = make_ip(10, 0, 0, 11);
  gateway.register_device(dev, "dev");
  gateway.register_device(peer, "peer");
  std::vector<Packet> packets;
  packets.push_back(Packet{1.0, dev, peer, 5000, 80, Protocol::kTcp, 80});
  packets.push_back(Packet{2.0, dev, make_ip(10, 0, 0, 99), 5000, 80,
                           Protocol::kTcp, 80});
  packets.push_back(Packet{3.0, dev, rig.options.router_ip, 5000, 53,
                           Protocol::kUdp, 80});
  packets.push_back(Packet{4.0, peer, make_ip(10, 0, 0, 98), 5000, 80,
                           Protocol::kTcp, 80});
  const auto report = gateway.process(packets, 5.0);
  // dev -> registered peer and dev -> router pass; the two packets to
  // unregistered LAN hosts are blocked.
  EXPECT_EQ(report.lateral_packets_blocked, 2u);
}

TEST(GatewayPolicy, SparseWindowsAreNeverScored) {
  auto rig = make_policy_rig();
  SmartGateway gateway(rig.classifier, rig.detector, rig.options);
  const auto dev = make_ip(10, 0, 0, 10);
  gateway.register_device(dev, "dev");
  std::vector<Packet> packets;
  // Attack-shaped traffic, but below min_packets_to_score in every window:
  // classified, never anomaly-scored, never quarantined.
  for (int w = 0; w < 4; ++w) {
    add_attack_window(packets, 10.0 * w, dev, 20);
  }
  sort_by_time(packets);
  const auto report = gateway.process(packets, 40.0);
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].final_zone, Zone::kIot);
  EXPECT_EQ(report.verdicts[0].predicted_type, 0);
  EXPECT_EQ(report.verdicts[0].max_anomaly_score, 0.0);
  EXPECT_TRUE(report.events.empty());
}

TEST(GatewayPolicy, CleanWindowResetsQuarantineDebounce) {
  auto rig = make_policy_rig();
  SmartGateway gateway(rig.classifier, rig.detector, rig.options);
  const auto dev = make_ip(10, 0, 0, 10);
  gateway.register_device(dev, "dev");
  std::vector<Packet> packets;
  add_attack_window(packets, 0.0, dev);
  add_normal_window(packets, 10.0, dev);  // scored clean: debounce resets
  add_attack_window(packets, 20.0, dev);
  add_attack_window(packets, 30.0, dev);
  sort_by_time(packets);
  const auto report = gateway.process(packets, 40.0);
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].final_zone, Zone::kQuarantined);
  // Quarantine lands only after the second consecutive run of anomalies,
  // at the end of window 3 — not at t = 20.
  EXPECT_EQ(report.verdicts[0].quarantined_at_s, 40.0);
}

TEST(Features, PolicyIndicesMatchFeatureNames) {
  EXPECT_NO_THROW(check_feature_layout());
  EXPECT_EQ(feature_names()[kFeaturePktRateUp], "pkt_rate_up");
  EXPECT_EQ(feature_names()[kFeaturePktRateDown], "pkt_rate_down");
}

}  // namespace
}  // namespace pmiot::net
