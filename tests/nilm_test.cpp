// Tests for the NILM module: the paper's error-factor metric, PowerPlay
// model-driven tracking, and the FHMM baseline harness.
#include <gtest/gtest.h>

#include "common/error.h"
#include "nilm/error.h"
#include "nilm/fhmm_nilm.h"
#include "nilm/powerplay.h"
#include "synth/home.h"

namespace pmiot::nilm {
namespace {

TEST(ErrorMetric, PerfectTrackingScoresZero) {
  const std::vector<double> actual{1, 2, 0, 3};
  EXPECT_DOUBLE_EQ(disaggregation_error(actual, actual), 0.0);
}

TEST(ErrorMetric, AlwaysZeroEstimateScoresOne) {
  // The paper: "simply inferring a load's energy usage to be zero at each
  // time t results in a tracking error of one."
  const std::vector<double> actual{1, 2, 0, 3};
  const std::vector<double> zeros(actual.size(), 0.0);
  EXPECT_DOUBLE_EQ(disaggregation_error(zeros, actual), 1.0);
}

TEST(ErrorMetric, CanExceedOne) {
  const std::vector<double> actual{1, 1};
  const std::vector<double> wild{5, 5};
  EXPECT_GT(disaggregation_error(wild, actual), 1.0);
}

TEST(ErrorMetric, Validation) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(disaggregation_error(a, b), InvalidArgument);
  const std::vector<double> zero{0.0, 0.0};
  EXPECT_THROW(disaggregation_error(zero, zero), InvalidArgument);
}

// --- LoadModel ----------------------------------------------------------------

TEST(LoadModel, FromSpecCyclical) {
  const auto m = LoadModel::from_spec(synth::fridge());
  EXPECT_TRUE(m.cyclical);
  EXPECT_NEAR(m.on_edge_kw,
              synth::fridge().steady_kw + synth::fridge().startup_spike_kw,
              1e-9);
  EXPECT_NEAR(m.off_edge_kw, synth::fridge().steady_kw, 1e-9);
  EXPECT_GT(m.expected_off_minutes, 0.0);
}

TEST(LoadModel, FromSpecInteractiveMultiPhase) {
  const auto m = LoadModel::from_spec(synth::dryer());
  EXPECT_FALSE(m.cyclical);
  // Multi-phase: the alternate on edge is the heater re-engagement.
  EXPECT_NEAR(m.alt_on_edge_kw,
              synth::dryer().steady_kw - synth::dryer().low_kw, 1e-9);
  EXPECT_NEAR(m.track_kw, synth::dryer().steady_kw, 1e-9);
}

TEST(PowerPlay, RejectsEmptyModels) {
  EXPECT_THROW(PowerPlay({}), InvalidArgument);
}

TEST(PowerPlay, TracksIsolatedCyclicalLoad) {
  synth::HomeConfig cfg;
  cfg.name = "fridge-only";
  cfg.appliances = {synth::fridge()};
  cfg.meter_noise_kw = 0.0;
  Rng rng(1);
  const auto trace = synth::simulate_home(cfg, CivilDate{2017, 6, 1}, 3, rng);
  PowerPlay tracker({LoadModel::from_spec(synth::fridge())});
  const auto tracked = tracker.track(trace.aggregate);
  ASSERT_EQ(tracked.size(), 1u);
  const double err = disaggregation_error(tracked[0].power,
                                          trace.per_appliance[0].values());
  EXPECT_LT(err, 0.3);
}

TEST(PowerPlay, TracksIsolatedInteractiveLoad) {
  synth::HomeConfig cfg;
  cfg.name = "toaster-only";
  auto spec = synth::toaster();
  spec.hourly_rate.fill(1.0);  // frequent events for a short test trace
  cfg.appliances = {spec};
  cfg.meter_noise_kw = 0.0;
  Rng rng(2);
  const auto trace = synth::simulate_home(cfg, CivilDate{2017, 6, 1}, 3, rng);
  PowerPlay tracker({LoadModel::from_spec(spec)});
  const auto tracked = tracker.track(trace.aggregate);
  const double err = disaggregation_error(tracked[0].power,
                                          trace.per_appliance[0].values());
  EXPECT_LT(err, 0.35);
}

TEST(PowerPlay, RobustToUnmodelledLoads) {
  // The Figure 2 claim: tracked-load error stays bounded even with
  // untracked interactive loads present.
  Rng rng(3);
  const auto trace =
      synth::simulate_home(synth::fig2_home(), CivilDate{2017, 6, 1}, 7, rng);
  std::vector<LoadModel> models;
  for (const auto& name : {"fridge", "dryer", "hrv"}) {
    for (const auto& spec : synth::fig2_home().appliances) {
      if (spec.name == name) models.push_back(LoadModel::from_spec(spec));
    }
  }
  PowerPlay tracker(models);
  const auto tracked = tracker.track(trace.aggregate);
  for (std::size_t i = 0; i < tracked.size(); ++i) {
    const auto idx = trace.appliance_index(tracked[i].name);
    if (trace.per_appliance[idx].energy_kwh() <= 0.0) continue;  // never ran
    const double err = disaggregation_error(
        tracked[i].power, trace.per_appliance[idx].values());
    EXPECT_LT(err, 0.9) << tracked[i].name;
  }
}

TEST(PowerPlay, BeatsZeroBaselineOnFig2Home) {
  Rng rng(4);
  const auto trace =
      synth::simulate_home(synth::fig2_home(), CivilDate{2017, 6, 1}, 14, rng);
  std::vector<LoadModel> models;
  for (const auto& spec : synth::fig2_home().appliances) {
    for (const auto& name : {"toaster", "fridge", "freezer", "dryer", "hrv"}) {
      if (spec.name == name) models.push_back(LoadModel::from_spec(spec));
    }
  }
  PowerPlay tracker(models);
  const auto tracked = tracker.track(trace.aggregate);
  double mean_err = 0.0;
  int scored = 0;
  for (std::size_t i = 0; i < tracked.size(); ++i) {
    const auto idx = trace.appliance_index(tracked[i].name);
    if (trace.per_appliance[idx].energy_kwh() <= 0.0) continue;  // never ran
    mean_err += disaggregation_error(tracked[i].power,
                                     trace.per_appliance[idx].values());
    ++scored;
  }
  ASSERT_GT(scored, 0);
  mean_err /= scored;
  EXPECT_LT(mean_err, 0.75);  // the all-zero strawman scores exactly 1.0
}

// --- FHMM NILM -------------------------------------------------------------------

TEST(FhmmNilm, LearnsAndDecodesFig2Devices) {
  Rng rng(5);
  const auto cfg = synth::fig2_home();
  const auto train = synth::simulate_home(cfg, CivilDate{2017, 5, 1}, 7, rng);
  const auto test = synth::simulate_home(cfg, CivilDate{2017, 6, 1}, 7, rng);

  Rng fit_rng(6);
  FhmmNilmOptions options;
  options.states_per_appliance = 2;
  FhmmNilm model(train, {"fridge", "dryer"}, fit_rng, options);
  EXPECT_GT(model.noise_kw(), 0.0);
  EXPECT_LE(model.joint_states(), 4096u);

  const auto estimates = model.disaggregate(test.aggregate);
  ASSERT_EQ(estimates.size(), 2u);
  // The dryer is a huge load: the FHMM must track it well (the paper's
  // Figure 2 "exception").
  const auto dryer_idx = test.appliance_index("dryer");
  const double dryer_err = disaggregation_error(
      estimates[1], test.per_appliance[dryer_idx].values());
  EXPECT_LT(dryer_err, 0.45);
}

TEST(FhmmNilm, FactoredAndNaiveDecodersAgree) {
  Rng rng(11);
  const auto cfg = synth::fig2_home();
  const auto train = synth::simulate_home(cfg, CivilDate{2017, 5, 1}, 5, rng);
  const auto test = synth::simulate_home(cfg, CivilDate{2017, 6, 1}, 2, rng);

  FhmmNilmOptions options;
  options.states_per_appliance = 2;
  Rng fit_rng(12);
  FhmmNilm factored(train, {"fridge", "dryer"}, fit_rng, options);
  options.decode.algorithm = ml::FhmmDecodeAlgorithm::kNaiveJoint;
  Rng fit_rng2(12);
  FhmmNilm naive(train, {"fridge", "dryer"}, fit_rng2, options);

  EXPECT_EQ(factored.disaggregate(test.aggregate),
            naive.disaggregate(test.aggregate));
}

TEST(FhmmNilm, RejectsUnknownAppliance) {
  Rng rng(7);
  const auto train =
      synth::simulate_home(synth::fig2_home(), CivilDate{2017, 5, 1}, 2, rng);
  Rng fit_rng(8);
  EXPECT_THROW(FhmmNilm(train, {"spaceship"}, fit_rng), InvalidArgument);
}

TEST(FhmmNilm, RequiresAtLeastTwoStates) {
  Rng rng(9);
  const auto train =
      synth::simulate_home(synth::fig2_home(), CivilDate{2017, 5, 1}, 2, rng);
  Rng fit_rng(10);
  FhmmNilmOptions options;
  options.states_per_appliance = 1;
  EXPECT_THROW(FhmmNilm(train, {"fridge"}, fit_rng, options),
               InvalidArgument);
}

}  // namespace
}  // namespace pmiot::nilm
