// Tests for the NIOM occupancy attack: detectors, evaluation harness, and
// the paper's §II-A accuracy band on synthetic homes.
#include <gtest/gtest.h>

#include "common/error.h"
#include "niom/detector.h"
#include "niom/evaluate.h"
#include "synth/home.h"

namespace pmiot::niom {
namespace {

synth::HomeTrace test_home(std::uint64_t seed = 42, int days = 10) {
  Rng rng(seed);
  return synth::simulate_home(synth::home_a(), CivilDate{2017, 6, 5}, days,
                              rng);
}

TEST(ThresholdNiom, DetectsOccupancyInBand) {
  const auto home = test_home();
  ThresholdNiom detector;
  const auto report =
      evaluate(detector, home.aggregate, home.occupancy, waking_hours());
  EXPECT_GT(report.accuracy, 0.65);
  EXPECT_LT(report.accuracy, 0.98);
  EXPECT_GT(report.mcc, 0.3);
}

TEST(HmmNiom, DetectsOccupancyInBand) {
  const auto home = test_home();
  HmmNiom detector;
  const auto report =
      evaluate(detector, home.aggregate, home.occupancy, waking_hours());
  EXPECT_GT(report.accuracy, 0.6);
  EXPECT_GT(report.mcc, 0.25);
}

TEST(Detectors, OutputLengthMatchesInput) {
  const auto home = test_home(7, 3);
  ThresholdNiom threshold;
  HmmNiom hmm;
  EXPECT_EQ(threshold.detect(home.aggregate).size(), home.aggregate.size());
  EXPECT_EQ(hmm.detect(home.aggregate).size(), home.aggregate.size());
}

TEST(Detectors, LabelsAreBinary) {
  const auto home = test_home(9, 3);
  ThresholdNiom detector;
  for (int v : detector.detect(home.aggregate)) {
    EXPECT_TRUE(v == 0 || v == 1);
  }
}

TEST(Detectors, FlatTraceReadsVacant) {
  // A constant trace has no activity signature at all; after night
  // calibration everything should read as a single class.
  ts::TimeSeries flat(ts::TraceMeta{CivilDate{2017, 6, 1}, 0, 60},
                      std::vector<double>(3 * kMinutesPerDay, 0.2));
  ThresholdNiom detector;
  const auto labels = detector.detect(flat);
  std::size_t ones = 0;
  for (int v : labels) ones += v;
  EXPECT_EQ(ones, 0u);
}

TEST(Detectors, WorkOnCoarserData) {
  const auto home = test_home(11, 7);
  const auto five_minute = home.aggregate.resample(300);
  ThresholdNiom detector;
  const auto report =
      evaluate(detector, five_minute, home.occupancy, waking_hours());
  EXPECT_GT(report.accuracy, 0.55);
}

TEST(Evaluate, WindowRestrictsScoring) {
  const auto home = test_home(13, 5);
  ThresholdNiom detector;
  const auto all_day = evaluate(detector, home.aggregate, home.occupancy);
  const auto waking =
      evaluate(detector, home.aggregate, home.occupancy, waking_hours());
  // Whole-day scoring includes sleeping hours, where occupied looks vacant,
  // so it must not beat waking-hours scoring.
  EXPECT_LE(all_day.accuracy, waking.accuracy + 0.02);
  EXPECT_EQ(all_day.confusion.total(), home.aggregate.size());
}

TEST(Evaluate, RejectsEmptyWindow) {
  const auto home = test_home(15, 2);
  ThresholdNiom detector;
  EvaluateOptions bad;
  bad.score_start_minute = 100;
  bad.score_end_minute = 100;
  EXPECT_THROW(evaluate(detector, home.aggregate, home.occupancy, bad),
               InvalidArgument);
}

TEST(Evaluate, ScorePredictionsChecksLength) {
  const auto home = test_home(17, 2);
  std::vector<int> wrong(home.aggregate.size() - 1, 0);
  EXPECT_THROW(
      score_predictions("x", wrong, home.aggregate, home.occupancy),
      InvalidArgument);
}

TEST(AlignOccupancy, DownsamplesByMajority) {
  const auto home = test_home(19, 2);
  const auto quarter_hour = home.aggregate.resample(900);
  const auto aligned = align_occupancy(quarter_hour, home.occupancy);
  EXPECT_EQ(aligned.size(), quarter_hour.size());
}

TEST(AlignOccupancy, FailsWhenTruthTooShort) {
  const auto home = test_home(21, 2);
  std::vector<int> short_truth(100, 1);
  EXPECT_THROW(align_occupancy(home.aggregate, short_truth), InvalidArgument);
}

TEST(ThresholdNiom, OptionValidation) {
  ThresholdNiom::Options bad;
  bad.mean_factor = -1.0;
  EXPECT_THROW(ThresholdNiom{bad}, InvalidArgument);
  ThresholdNiom::Options empty_night;
  empty_night.night_start_minute = 300;
  empty_night.night_end_minute = 200;
  EXPECT_THROW(ThresholdNiom{empty_night}, InvalidArgument);
}

TEST(ThresholdNiom, RejectsTraceShorterThanWindow) {
  ts::TimeSeries tiny(ts::TraceMeta{CivilDate{2017, 6, 1}, 0, 60},
                      std::vector<double>(5, 0.1));
  ThresholdNiom detector;
  EXPECT_THROW(detector.detect(tiny), InvalidArgument);
}

TEST(SupervisedNiom, BeatsUnsupervisedWithLabels) {
  // One week of labelled history, one week of test data, same home.
  Rng rng(31);
  const auto train =
      synth::simulate_home(synth::home_a(), CivilDate{2017, 5, 29}, 7, rng);
  const auto test =
      synth::simulate_home(synth::home_a(), CivilDate{2017, 6, 5}, 7, rng);
  SupervisedNiom supervised;
  supervised.fit(train.aggregate, train.occupancy);
  ThresholdNiom unsupervised;
  const auto s_report = evaluate(supervised, test.aggregate, test.occupancy,
                                 waking_hours());
  const auto u_report = evaluate(unsupervised, test.aggregate, test.occupancy,
                                 waking_hours());
  EXPECT_GT(s_report.accuracy, 0.65);
  EXPECT_GT(s_report.accuracy, u_report.accuracy - 0.05);
}

TEST(SupervisedNiom, RequiresFit) {
  const auto home = test_home(33, 2);
  SupervisedNiom detector;
  EXPECT_FALSE(detector.fitted());
  EXPECT_THROW(detector.detect(home.aggregate), InvalidArgument);
}

TEST(SupervisedNiom, RequiresBothClassesInTraining) {
  Rng rng(35);
  auto cfg = synth::home_a();
  cfg.occupancy.employed = false;
  cfg.occupancy.weekend_errands_mean = 0.0;
  cfg.occupancy.evening_out_probability = 0.0;
  cfg.occupancy.vacation_probability = 0.0;
  const auto always_home =
      synth::simulate_home(cfg, CivilDate{2017, 6, 5}, 3, rng);
  SupervisedNiom detector;
  EXPECT_THROW(detector.fit(always_home.aggregate, always_home.occupancy),
               InvalidArgument);
}

class NiomAccuracyBand : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NiomAccuracyBand, StaysAbove60PercentAcrossSeeds) {
  const auto home = test_home(GetParam(), 10);
  ThresholdNiom detector;
  const auto report =
      evaluate(detector, home.aggregate, home.occupancy, waking_hours());
  EXPECT_GT(report.accuracy, 0.6) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, NiomAccuracyBand,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace pmiot::niom
