// Determinism suite for the observability layer: counter/gauge/histogram
// snapshots must be bitwise identical at any pool width, the metrics-off
// path must record nothing, and a failed batch must discard its per-shard
// cells wholesale (never merge them partially by scheduling order).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"

namespace pmiot {
namespace {

obs::MetricsRegistry& registry() { return obs::MetricsRegistry::instance(); }

/// Turns recording on for one test and restores the default (off — the
/// test binary runs without PMIOT_METRICS) afterwards, zeroing values on
/// both edges so tests never see each other's counts.
struct MetricsOn {
  MetricsOn() {
    registry().reset_values_for_testing();
    obs::set_enabled_for_testing(true);
  }
  ~MetricsOn() {
    obs::set_enabled_for_testing(false);
    registry().reset_values_for_testing();
  }
};

/// A workload touching every deterministic metric family from inside
/// shards: per-shard counter deltas, per-shard histogram observes (doubles,
/// so merge order matters), plus direct adds from serial code.
void run_workload() {
  obs::Counter& events = registry().counter("test.obs.events");
  obs::Histogram& sizes =
      registry().histogram("test.obs.sizes", {1.0, 10.0, 100.0});
  registry().gauge("test.obs.width").set(7);

  events.add(5);  // direct add outside any batch
  par::parallel_for(0, 16, [&](std::size_t i) {
    events.add(i + 1);
    sizes.observe(0.1 * static_cast<double>(i * i));
    // Nested batches run inline and accumulate into the enclosing shard's
    // cell; they are not counted as batches at any width. The nesting here
    // is deliberate: it pins exactly that behaviour.
    // pmiot-lint: allow(nested-par)
    par::parallel_for(0, 3, [&](std::size_t j) {
      events.add(j);
      sizes.observe(static_cast<double>(i) + 0.25 * static_cast<double>(j));
    });
  });
  sizes.observe(1.0);  // direct observe after the batch
}

std::string deterministic_text() {
  return obs::to_text(registry().snapshot({}));
}

TEST(Obs, CounterSnapshotsIdenticalAcrossPoolWidths) {
  MetricsOn on;

  run_workload();  // default shared pool (hardware width / PMIOT_THREADS)
  const std::string at_default = deterministic_text();
  ASSERT_NE(at_default.find("counter test.obs.events"), std::string::npos);

  registry().reset_values_for_testing();
  {
    par::ThreadPool pool1(1);
    par::ScopedPoolOverride scope(pool1);
    run_workload();
  }
  const std::string at_1 = deterministic_text();

  registry().reset_values_for_testing();
  {
    par::ThreadPool pool4(4);
    par::ScopedPoolOverride scope(pool4);
    run_workload();
  }
  const std::string at_4 = deterministic_text();

  EXPECT_EQ(at_1, at_default);
  EXPECT_EQ(at_4, at_default);
}

TEST(Obs, WorkloadCountsAreExact) {
  MetricsOn on;
  run_workload();
  // 5 direct + sum(i+1, i<16)=136 in shards + 16 nested * (0+1+2)=48.
  EXPECT_EQ(registry().counter("test.obs.events").value(), 5u + 136u + 48u);
  EXPECT_EQ(registry().gauge("test.obs.width").value(), 7);
}

TEST(Obs, ParBatchAndShardCountersTrackTopLevelBatches) {
  MetricsOn on;
  const std::uint64_t batches0 = registry().counter("par.batches").value();
  const std::uint64_t shards0 = registry().counter("par.shards").value();
  run_workload();
  // One top-level batch of 16 shards; the 16 nested calls count nowhere.
  EXPECT_EQ(registry().counter("par.batches").value(), batches0 + 1);
  EXPECT_EQ(registry().counter("par.shards").value(), shards0 + 16);
}

TEST(Obs, MetricsOffReturnsEmptySnapshot) {
  registry().reset_values_for_testing();
  obs::set_enabled_for_testing(false);
  obs::Counter& c = registry().counter("test.obs.off_counter");
  c.add(42);
  par::parallel_for(0, 8, [&](std::size_t) { c.add(); });
  EXPECT_EQ(c.value(), 0u);

  const obs::Snapshot snap =
      registry().snapshot({.include_nondeterministic = true});
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
  EXPECT_TRUE(snap.timers.empty());
  EXPECT_TRUE(snap.worker_shards.empty());
  EXPECT_EQ(obs::to_text(snap), "");
}

TEST(Obs, HistogramBucketEdgeCases) {
  MetricsOn on;
  obs::Histogram& h =
      registry().histogram("test.obs.edges", {1.0, 2.0, 4.0});
  h.observe(1.0);   // exactly on the first edge -> bucket 0 (v <= edge)
  h.observe(1.5);   // between edges -> bucket 1
  h.observe(4.0);   // exactly on the last edge -> bucket 2
  h.observe(5.0);   // above every edge -> overflow bucket
  h.observe(-3.0);  // below every edge -> bucket 0

  const obs::Snapshot snap = registry().snapshot({});
  const auto it = std::find_if(
      snap.histograms.begin(), snap.histograms.end(),
      [](const auto& hv) { return hv.name == "test.obs.edges"; });
  ASSERT_NE(it, snap.histograms.end());
  EXPECT_EQ(it->buckets, (std::vector<std::uint64_t>{2, 1, 1, 1}));
  EXPECT_EQ(it->count, 5u);
  EXPECT_DOUBLE_EQ(it->sum, 1.0 + 1.5 + 4.0 + 5.0 - 3.0);

  // Zero edges means one catch-all bucket.
  obs::Histogram& all = registry().histogram("test.obs.one_bucket", {});
  all.observe(123.0);

  // Misuse is a checked error, not UB.
  EXPECT_THROW(registry().histogram("test.obs.bad_edges", {2.0, 1.0}),
               InvalidArgument);
  EXPECT_THROW(registry().histogram("test.obs.edges", {1.0, 2.0}),
               InvalidArgument);  // re-registered with different edges
}

// Pins the exception policy audited in ISSUE 5: the pool path keeps
// running remaining iterations after a throw while the inline (width-1)
// path stops at the throw, so the set of executed shards differs by width.
// Merging survivors could never be deterministic — a failed batch must
// discard every per-shard cell, at every width.
TEST(Obs, FailedBatchDiscardsAllShardCells) {
  MetricsOn on;
  obs::Counter& c = registry().counter("test.obs.failing");

  const auto failing = [&](std::size_t i) {
    if (i == 2) throw InvalidArgument("boom");
    c.add(100);
  };

  c.add(1);  // direct adds outside the batch are unaffected
  EXPECT_THROW(par::parallel_for(0, 8, failing), InvalidArgument);
  EXPECT_EQ(c.value(), 1u);
  const std::string after_default = deterministic_text();

  registry().reset_values_for_testing();
  {
    par::ThreadPool pool1(1);
    par::ScopedPoolOverride scope(pool1);
    c.add(1);
    EXPECT_THROW(par::parallel_for(0, 8, failing), InvalidArgument);
  }
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(deterministic_text(), after_default);

  registry().reset_values_for_testing();
  {
    par::ThreadPool pool4(4);
    par::ScopedPoolOverride scope(pool4);
    c.add(1);
    EXPECT_THROW(par::parallel_for(0, 8, failing), InvalidArgument);
  }
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(deterministic_text(), after_default);

  // The registry is healthy after a failed batch: the next successful
  // batch merges normally.
  par::parallel_for(0, 4, [&](std::size_t) { c.add(10); });
  EXPECT_EQ(c.value(), 41u);
}

TEST(Obs, TimersOnlyInNondeterministicSnapshot) {
  MetricsOn on;
  obs::Timer& t = registry().timer("test.obs.span");
  { obs::ScopedTimer span(t); }

  const obs::Snapshot deterministic = registry().snapshot({});
  EXPECT_TRUE(deterministic.timers.empty());
  EXPECT_EQ(deterministic_text().find("test.obs.span"), std::string::npos);

  const obs::Snapshot all =
      registry().snapshot({.include_nondeterministic = true});
  const auto it =
      std::find_if(all.timers.begin(), all.timers.end(),
                   [](const auto& tv) { return tv.name == "test.obs.span"; });
  ASSERT_NE(it, all.timers.end());
  EXPECT_EQ(it->count, 1u);
}

TEST(Obs, WorkerShardCountsOnlyInNondeterministicSnapshot) {
  MetricsOn on;
  par::parallel_for(0, 32, [](std::size_t) {});
  const obs::Snapshot deterministic = registry().snapshot({});
  EXPECT_TRUE(deterministic.worker_shards.empty());

  const obs::Snapshot all =
      registry().snapshot({.include_nondeterministic = true});
  std::uint64_t total = 0;
  for (const auto& w : all.worker_shards) total += w.value;
  EXPECT_EQ(total, 32u);
}

TEST(Obs, JsonSnapshotFollowsBenchConventions) {
  MetricsOn on;
  registry().counter("test.obs.json").add(3);
  registry().gauge("test.obs.json_gauge").set(-4);
  registry().histogram("test.obs.json_hist", {2.5}).observe(1.0);
  const std::string json = obs::to_json(
      registry().snapshot({.include_nondeterministic = true}), "obs_test");
  EXPECT_NE(json.find("\"source\": \"obs_test\""), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.json\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.json_gauge\": -4"), std::string::npos);
  EXPECT_NE(json.find("\"edges\": [2.5]"), std::string::npos);
  EXPECT_NE(json.find("\"worker_shards\""), std::string::npos);
}

}  // namespace
}  // namespace pmiot
