// ThreadPool stress tests for the tsan preset: hammer the pool with mixed
// task shapes — tiny batches, wide batches, uneven per-iteration work,
// exception unwinding, nested calls, back-to-back reuse — at pool widths
// {1, 2, 16}, asserting the determinism contract (slot-per-shard output
// identical at every width) along the way. Under -DPMIOT_SANITIZE=thread
// these are the tests that give TSan something to bite on; they are cheap
// enough to run in the default preset too.
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"

namespace {

using pmiot::par::ScopedPoolOverride;
using pmiot::par::ThreadPool;

// The widths the issue pins: degenerate (inline), minimal handoff, and
// heavily oversubscribed on small CI machines.
const std::size_t kWidths[] = {1, 2, 16};

// Deterministic per-iteration work whose cost varies by index, so shards
// finish out of order and the atomic-cursor handoff gets exercised.
std::uint64_t mix(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t uneven_work(std::size_t i) {
  std::uint64_t acc = pmiot::par::shard_seed(7, i);
  const std::size_t rounds = 1 + (i % 97) * 11;
  for (std::size_t r = 0; r < rounds; ++r) acc = mix(acc + r);
  return acc;
}

TEST(PoolStress, MixedShapesMatchSerialAtEveryWidth) {
  constexpr std::size_t kItems = 513;  // odd, larger than any width
  std::vector<std::uint64_t> expected(kItems);
  for (std::size_t i = 0; i < kItems; ++i) expected[i] = uneven_work(i);

  for (const std::size_t width : kWidths) {
    ThreadPool pool(width);
    ScopedPoolOverride override_(pool);
    std::vector<std::uint64_t> out(kItems, 0);
    pmiot::par::parallel_for(0, kItems, [&](std::size_t i) {
      out[i] = uneven_work(i);
    });
    EXPECT_EQ(out, expected) << "width " << width;
  }
}

TEST(PoolStress, ManySmallBatchesReuseThePool) {
  // Batch sizes cycle through awkward shapes: empty, single, width-1,
  // width, width+1, and a wide burst. Reusing one pool across hundreds of
  // batches stresses the generation/wake handshake.
  for (const std::size_t width : kWidths) {
    ThreadPool pool(width);
    std::uint64_t checksum = 0;
    std::uint64_t expected = 0;
    const std::size_t shapes[] = {0, 1, width > 1 ? width - 1 : 1,
                                  width, width + 1, 64};
    for (std::size_t round = 0; round < 200; ++round) {
      const std::size_t n = shapes[round % 6];
      std::vector<std::uint64_t> slot(n, 0);
      pool.parallel_for(0, n, [&](std::size_t i) {
        slot[i] = mix(round * 1000 + i);
      });
      for (std::size_t i = 0; i < n; ++i) {
        checksum ^= slot[i];
        expected ^= mix(round * 1000 + i);
      }
    }
    EXPECT_EQ(checksum, expected) << "width " << width;
  }
}

TEST(PoolStress, AtomicCountersSeeEveryIteration) {
  for (const std::size_t width : kWidths) {
    ThreadPool pool(width);
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    constexpr std::size_t kItems = 10000;
    pool.parallel_for(0, kItems, [&](std::size_t i) {
      count.fetch_add(1, std::memory_order_relaxed);
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), kItems);
    EXPECT_EQ(sum.load(), kItems * (kItems - 1) / 2);
  }
}

TEST(PoolStress, NestedCallsRunInlineUnderLoad) {
  for (const std::size_t width : kWidths) {
    ThreadPool pool(width);
    std::vector<std::uint64_t> out(32 * 32, 0);
    pool.parallel_for(0, 32, [&](std::size_t i) {
      // Nesting is the behaviour under test. pmiot-lint: allow(nested-par)
      pool.parallel_for(0, 32, [&](std::size_t j) {
        out[i * 32 + j] = mix(i * 32 + j);
      });
    });
    for (std::size_t k = 0; k < out.size(); ++k) {
      EXPECT_EQ(out[k], mix(k)) << k;
    }
  }
}

TEST(PoolStress, ExceptionUnwindingLeavesPoolUsable) {
  for (const std::size_t width : kWidths) {
    ThreadPool pool(width);
    for (std::size_t round = 0; round < 20; ++round) {
      EXPECT_THROW(
          pool.parallel_for(0, 256,
                            [&](std::size_t i) {
                              if (i % 17 == 3) {
                                throw std::runtime_error("shard failure");
                              }
                            }),
          std::runtime_error);
      // The pool must come back clean for the next batch.
      std::atomic<std::size_t> ran{0};
      pool.parallel_for(0, 64, [&](std::size_t) {
        ran.fetch_add(1, std::memory_order_relaxed);
      });
      EXPECT_EQ(ran.load(), 64u);
    }
  }
}

TEST(PoolStress, OverridesNestAcrossWidths) {
  // A wide pool delegating to a narrow override and back: the override
  // stack is thread-local, so this exercises restore ordering.
  ThreadPool wide(16);
  ThreadPool narrow(2);
  std::vector<std::uint64_t> a(100, 0), b(100, 0);
  {
    ScopedPoolOverride outer(wide);
    pmiot::par::parallel_for(0, a.size(), [&](std::size_t i) {
      a[i] = uneven_work(i);
    });
    {
      ScopedPoolOverride inner(narrow);
      pmiot::par::parallel_for(0, b.size(), [&](std::size_t i) {
        b[i] = uneven_work(i);
      });
    }
  }
  EXPECT_EQ(a, b);
}

}  // namespace
