// Tests for pmiot::simd: every dispatched kernel must be bit-identical to
// its scalar:: reference across vector-width remainders, exact ties, and
// non-finite inputs, and strided_sum must honour its pinned fixed-width
// reduction-tree contract (DESIGN.md). On machines without AVX2 the
// dispatchers fall back to the references and these tests pass trivially;
// CI's simd-parity job covers the cross-build diff.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "simd/simd.h"

namespace pmiot::simd {
namespace {

constexpr std::size_t kSizes[] = {0,  1,  2,  3,  4,  5,  7,  8,   9,  15,
                                  16, 17, 31, 32, 33, 63, 64, 100, 257};

std::vector<double> random_values(Rng& rng, std::size_t n, double lo,
                                  double hi) {
  std::vector<double> out(n);
  for (auto& v : out) v = rng.uniform(lo, hi);
  return out;
}

void expect_bitwise_equal(const std::vector<double>& a,
                          const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << what << " diverges at element " << i;
  }
}

TEST(Simd, BackendMatchesActiveFlag) {
  const std::string name = backend();
  if (active()) {
    EXPECT_EQ(name, "avx2");
  } else {
    EXPECT_EQ(name, "scalar");
  }
}

TEST(Simd, LogEmissionScanMatchesScalar) {
  Rng rng(101);
  for (const std::size_t n : kSizes) {
    const auto xs = random_values(rng, n, -10.0, 10.0);
    std::vector<double> got(n), want(n);
    log_emission_scan(xs.data(), n, 1.25, -0.5, 3.7, got.data());
    scalar::log_emission_scan(xs.data(), n, 1.25, -0.5, 3.7, want.data());
    expect_bitwise_equal(got, want, "log_emission_scan");
  }
}

TEST(Simd, AddLogEmissionMatchesScalar) {
  Rng rng(102);
  for (const std::size_t n : kSizes) {
    const auto base = random_values(rng, n, -50.0, 0.0);
    const auto centers = random_values(rng, n, 0.0, 500.0);
    std::vector<double> got(n), want(n);
    add_log_emission(base.data(), 123.5, centers.data(), n, -2.1, 0.004,
                     got.data());
    scalar::add_log_emission(base.data(), 123.5, centers.data(), n, -2.1,
                             0.004, want.data());
    expect_bitwise_equal(got, want, "add_log_emission");
  }
}

TEST(Simd, FhmmStageGroupMatchesScalar) {
  Rng rng(103);
  for (const std::size_t n : {2u, 3u, 4u, 5u, 8u}) {
    for (const std::size_t s : {1u, 2u, 3u, 4u, 5u, 8u, 9u, 16u, 33u}) {
      const auto cur = random_values(rng, n * s, -30.0, 0.0);
      const auto lt = random_values(rng, n * n, -8.0, 0.0);
      std::vector<std::int32_t> origin(n * s);
      for (std::size_t i = 0; i < origin.size(); ++i) {
        origin[i] = static_cast<std::int32_t>(rng.uniform_int(0, 1000));
      }
      std::vector<double> got(n * s), want(n * s);
      std::vector<std::int32_t> got_origin(n * s), want_origin(n * s);
      fhmm_stage_group(cur.data(), origin.data(), lt.data(), n, s,
                       got.data(), got_origin.data());
      scalar::fhmm_stage_group(cur.data(), origin.data(), lt.data(), n, s,
                               want.data(), want_origin.data());
      expect_bitwise_equal(got, want, "fhmm_stage_group values");
      EXPECT_EQ(got_origin, want_origin)
          << "origins diverge at n=" << n << " s=" << s;
    }
  }
}

TEST(Simd, FhmmStageGroupBreaksTiesTowardLowestState) {
  // All candidates exactly equal: the strict-> compare chain must keep the
  // first (lowest a) winner in every lane, at every span width.
  for (const std::size_t s : {1u, 3u, 4u, 7u, 12u}) {
    const std::size_t n = 4;
    const std::vector<double> cur(n * s, -1.5);
    const std::vector<double> lt(n * n, -0.25);
    std::vector<std::int32_t> origin(n * s);
    for (std::size_t i = 0; i < origin.size(); ++i) {
      origin[i] = static_cast<std::int32_t>(i);
    }
    std::vector<double> nxt(n * s);
    std::vector<std::int32_t> nxt_origin(n * s);
    fhmm_stage_group(cur.data(), origin.data(), lt.data(), n, s, nxt.data(),
                     nxt_origin.data());
    for (std::size_t b = 0; b < n; ++b) {
      for (std::size_t lo = 0; lo < s; ++lo) {
        EXPECT_EQ(nxt_origin[b * s + lo], origin[lo])  // a = 0 wins
            << "b=" << b << " lo=" << lo << " s=" << s;
      }
    }
  }
}

TEST(Simd, KnnTileDistMatchesScalarAndRowMajorChain) {
  Rng rng(104);
  for (const std::size_t d : {1u, 3u, 4u, 8u, 13u}) {
    for (const std::size_t rows : {1u, 4u, 5u, 16u, 100u}) {
      const auto q = random_values(rng, d, -2.0, 2.0);
      const auto flat = random_values(rng, rows * d, -2.0, 2.0);  // row-major
      std::vector<double> cols(d * rows);
      for (std::size_t c = 0; c < d; ++c) {
        for (std::size_t r = 0; r < rows; ++r) {
          cols[c * rows + r] = flat[r * d + c];
        }
      }
      double q2 = 0.0;
      for (std::size_t c = 0; c < d; ++c) q2 += q[c] * q[c];
      std::vector<double> norm2(rows);
      for (std::size_t r = 0; r < rows; ++r) {
        double s = 0.0;
        for (std::size_t c = 0; c < d; ++c) {
          s += flat[r * d + c] * flat[r * d + c];
        }
        norm2[r] = s;
      }
      std::vector<double> got(rows), want(rows), chain(rows);
      knn_tile_dist2(q.data(), d, cols.data(), rows, q2, norm2.data(),
                     got.data());
      scalar::knn_tile_dist2(q.data(), d, cols.data(), rows, q2,
                             norm2.data(), want.data());
      // The contract anchor: the row-major fold_tile addition chain.
      for (std::size_t r = 0; r < rows; ++r) {
        double dot = 0.0;
        for (std::size_t c = 0; c < d; ++c) dot += q[c] * flat[r * d + c];
        chain[r] = q2 + norm2[r] - 2.0 * dot;
      }
      expect_bitwise_equal(got, want, "knn_tile_dist2 vs scalar");
      expect_bitwise_equal(want, chain, "knn_tile_dist2 vs row-major chain");
    }
  }
}

TEST(Simd, MaskLeqMatchesScalarSemantics) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> xs = {0.0, -0.0, 1.0,  1.0 + 1e-16, nan,
                                  inf, -inf, 0.999, 1.0000001,  1.0};
  for (const double threshold : {1.0, 0.0, -0.0, nan}) {
    std::vector<unsigned char> got(xs.size()), want(xs.size());
    mask_leq(xs.data(), xs.size(), threshold, got.data());
    scalar::mask_leq(xs.data(), xs.size(), threshold, want.data());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const unsigned char expected = xs[i] <= threshold ? 1 : 0;
      EXPECT_EQ(want[i], expected) << "scalar mask, element " << i;
      EXPECT_EQ(got[i], expected) << "dispatched mask, element " << i;
    }
  }
}

TEST(Simd, MaskAdjacentNeqMatchesScalarSemantics) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> xs = {1.0, 1.0, 2.0, 2.0, 2.0, -0.0, 0.0,
                                  nan, nan, 3.0, 3.0, 4.0};
  std::vector<unsigned char> got(xs.size() - 1), want(xs.size() - 1);
  mask_adjacent_neq(xs.data(), xs.size(), got.data());
  scalar::mask_adjacent_neq(xs.data(), xs.size(), want.data());
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
    const unsigned char expected = !(xs[i] == xs[i + 1]) ? 1 : 0;
    EXPECT_EQ(want[i], expected) << "scalar mask, boundary " << i;
    EXPECT_EQ(got[i], expected) << "dispatched mask, boundary " << i;
  }
  // NaN != NaN is true; -0.0 == 0.0 is true.
  EXPECT_EQ(got[7], 1);  // nan vs nan
  EXPECT_EQ(got[5], 0);  // -0.0 vs 0.0
}

TEST(Simd, StridedSumMatchesScalarBitwise) {
  Rng rng(105);
  for (const std::size_t n : kSizes) {
    // Mixed magnitudes make the sum order-sensitive, so agreement here
    // means the lane tree really is the same.
    std::vector<double> xs(n);
    for (std::size_t i = 0; i < n; ++i) {
      xs[i] = rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.uniform(-8, 8));
    }
    EXPECT_EQ(std::bit_cast<std::uint64_t>(strided_sum(xs.data(), n)),
              std::bit_cast<std::uint64_t>(scalar::strided_sum(xs.data(), n)))
        << "n=" << n;
  }
}

TEST(Simd, StridedSumHonoursPinnedReductionTree) {
  // Independent re-derivation of the documented contract: 8 striped
  // accumulators (element i lands in lane i % 8, in index order) combined
  // as ((a0+a1)+(a2+a3)) + ((a4+a5)+(a6+a7)).
  Rng rng(106);
  for (const std::size_t n : kSizes) {
    std::vector<double> xs(n);
    for (std::size_t i = 0; i < n; ++i) {
      xs[i] = rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.uniform(-6, 6));
    }
    double acc[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
    for (std::size_t i = 0; i < n; ++i) acc[i % 8] += xs[i];
    const double want = ((acc[0] + acc[1]) + (acc[2] + acc[3])) +
                        ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(strided_sum(xs.data(), n)),
              std::bit_cast<std::uint64_t>(want))
        << "n=" << n;
  }
}

}  // namespace
}  // namespace pmiot::simd
