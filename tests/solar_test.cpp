// Tests for the solar privacy attacks: SunSpot localization, Weatherman
// weather-correlation localization, and SunDance net-meter disaggregation.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/stats.h"
#include "nilm/error.h"
#include "solar/sundance.h"
#include "solar/sunspot.h"
#include "solar/weatherman.h"
#include "synth/home.h"
#include "synth/solar_gen.h"

namespace pmiot::solar {
namespace {

struct Scene {
  synth::WeatherField weather;
  synth::SolarSite site;
  ts::TimeSeries generation;
};

Scene make_scene(const geo::LatLon& where, int days = 60,
                 std::uint64_t seed = 99) {
  synth::WeatherField weather(synth::WeatherOptions{}, CivilDate{2017, 5, 1},
                              days, seed);
  synth::SolarSite site{"s", where, 6.0, 0.85, 1.0, 0.01};
  Rng rng(7);
  auto gen =
      synth::simulate_solar(site, weather, CivilDate{2017, 5, 1}, days, rng);
  return Scene{std::move(weather), site, std::move(gen)};
}

TEST(SunSpot, LocalizesEastCoastSite) {
  const auto scene = make_scene(geo::LatLon{42.39, -72.53});
  const auto result = sunspot_localize(scene.generation);
  EXPECT_LT(geo::haversine_km(result.estimate, scene.site.location), 120.0);
  EXPECT_GT(result.days_used, 30);
}

TEST(SunSpot, LocalizesWestCoastSiteAcrossUtcWrap) {
  // A Pacific site's solar day wraps UTC midnight; the phase logic must
  // handle it.
  const auto scene = make_scene(geo::LatLon{37.34, -121.89});
  const auto result = sunspot_localize(scene.generation);
  EXPECT_LT(geo::haversine_km(result.estimate, scene.site.location), 120.0);
}

TEST(SunSpot, LongitudeIsTight) {
  const auto scene = make_scene(geo::LatLon{40.0, -95.0});
  const auto result = sunspot_localize(scene.generation);
  EXPECT_NEAR(result.estimate.lon, -95.0, 0.5);
}

TEST(SunSpot, SignaturesCarryPlausibleDayLengths) {
  const auto scene = make_scene(geo::LatLon{42.0, -72.0}, 30);
  const auto result = sunspot_localize(scene.generation);
  for (const auto& sig : result.signatures) {
    EXPECT_GT(sig.day_length_min, 8 * 60.0);
    EXPECT_LT(sig.day_length_min, 18 * 60.0);
    EXPECT_GT(sig.noon_min, sig.first_gen_min);
    EXPECT_LT(sig.noon_min, sig.last_gen_min);
  }
}

TEST(SunSpot, RejectsDegenerateInput) {
  ts::TimeSeries flat(ts::TraceMeta{CivilDate{2017, 6, 1}, 0, 60},
                      std::vector<double>(2 * kMinutesPerDay, 0.0));
  EXPECT_THROW(sunspot_localize(flat), InvalidArgument);
}

TEST(SunSpot, WorksOnCoarserData) {
  // Day-length quantization at 15-minute sampling costs accuracy; the
  // attack should still land within a few hundred km (and the median filter
  // must be narrowed so its delay correction matches the coarse grid).
  const auto scene = make_scene(geo::LatLon{40.0, -90.0});
  const auto quarter_hour = scene.generation.resample(900);
  SunSpotOptions options;
  options.smooth_radius = 1;
  const auto result = sunspot_localize(quarter_hour, options);
  EXPECT_LT(geo::haversine_km(result.estimate, scene.site.location), 500.0);
}

TEST(Weatherman, BeatsStationSpacing) {
  const auto scene = make_scene(geo::LatLon{39.5, -96.5}, 60, 5);
  const auto stations = synth::make_station_grid(synth::WeatherOptions{}, 20, 30);
  std::vector<StationObservation> observations;
  for (const auto& st : stations) {
    observations.push_back(
        {st.name, st.location, scene.weather.cloud_series(st.location)});
  }
  const auto hourly = scene.generation.resample(3600);
  const auto result = weatherman_localize(hourly, geo::LatLon{40.0, -95.0},
                                          observations);
  // Station spacing here is ~100 km; the attack should do clearly better.
  EXPECT_LT(geo::haversine_km(result.estimate, scene.site.location), 80.0);
  EXPECT_GT(result.best_correlation, 0.7);
  EXPECT_EQ(result.station_correlations.size(), observations.size());
}

TEST(Weatherman, CorrelationPeaksNearTheSite) {
  const auto scene = make_scene(geo::LatLon{42.0, -72.5}, 45, 6);
  const auto stations =
      synth::make_station_grid(synth::WeatherOptions{}, 10, 14);
  std::vector<StationObservation> observations;
  for (const auto& st : stations) {
    observations.push_back(
        {st.name, st.location, scene.weather.cloud_series(st.location)});
  }
  const auto hourly = scene.generation.resample(3600);
  const auto result =
      weatherman_localize(hourly, geo::LatLon{42.0, -72.0}, observations);
  // The best station must be among the ones closest to the site.
  double best_distance = 1e9;
  for (std::size_t s = 0; s < observations.size(); ++s) {
    if (observations[s].name == result.best_station) {
      best_distance =
          geo::haversine_km(observations[s].location, scene.site.location);
    }
  }
  EXPECT_LT(best_distance, 500.0);
}

TEST(Weatherman, RequiresHourlyData) {
  const auto scene = make_scene(geo::LatLon{40.0, -90.0}, 30);
  std::vector<StationObservation> observations{
      {"st", {40.0, -90.0}, scene.weather.cloud_series({40.0, -90.0})}};
  EXPECT_THROW(weatherman_localize(scene.generation, scene.site.location,
                                   observations),
               InvalidArgument);
}

TEST(Weatherman, RequiresStationCoverage) {
  const auto scene = make_scene(geo::LatLon{40.0, -90.0}, 30);
  const auto hourly = scene.generation.resample(3600);
  std::vector<StationObservation> short_station{
      {"st", {40.0, -90.0}, std::vector<double>(10, 0.5)}};
  EXPECT_THROW(
      weatherman_localize(hourly, scene.site.location, short_station),
      InvalidArgument);
}

// --- SunDance ------------------------------------------------------------------

TEST(SunDance, RecoversGenerationAndConsumption) {
  const auto scene = make_scene(geo::LatLon{42.39, -72.53}, 30, 12);
  Rng rng(13);
  const auto home =
      synth::simulate_home(synth::home_b(), CivilDate{2017, 5, 1}, 30, rng);
  auto net = home.aggregate;
  net -= scene.generation;

  const auto clouds = scene.weather.cloud_series(scene.site.location);
  const auto result =
      sundance_disaggregate(net, scene.site.location, clouds);

  EXPECT_NEAR(result.scale_kw, scene.site.capacity_kw * scene.site.derate,
              1.2);
  const double gen_err = nilm::disaggregation_error(
      result.generation_estimate.values(), scene.generation.values());
  EXPECT_LT(gen_err, 0.25);
  const double cons_err = nilm::disaggregation_error(
      result.consumption_estimate.values(), home.aggregate.values());
  EXPECT_LT(cons_err, 0.45);
}

TEST(SunDance, WorksWithoutWeather) {
  const auto scene = make_scene(geo::LatLon{40.0, -85.0}, 30, 14);
  Rng rng(15);
  const auto home =
      synth::simulate_home(synth::home_a(), CivilDate{2017, 5, 1}, 30, rng);
  auto net = home.aggregate;
  net -= scene.generation;
  const auto result = sundance_disaggregate(net, scene.site.location);
  // Without weather the envelope is clear-sky only: rougher but sane.
  const double gen_err = nilm::disaggregation_error(
      result.generation_estimate.values(), scene.generation.values());
  EXPECT_LT(gen_err, 0.7);
}

TEST(SunDance, ConsumptionIsNonNegative) {
  const auto scene = make_scene(geo::LatLon{35.0, -110.0}, 20, 16);
  Rng rng(17);
  const auto home =
      synth::simulate_home(synth::home_a(), CivilDate{2017, 5, 1}, 20, rng);
  auto net = home.aggregate;
  net -= scene.generation;
  const auto result = sundance_disaggregate(net, scene.site.location);
  for (std::size_t i = 0; i < result.consumption_estimate.size(); ++i) {
    EXPECT_GE(result.consumption_estimate[i], 0.0);
  }
}

TEST(ApparentGeneration, RestoresShoulders) {
  const auto scene = make_scene(geo::LatLon{42.39, -72.53}, 20, 18);
  Rng rng(19);
  const auto home =
      synth::simulate_home(synth::home_a(), CivilDate{2017, 5, 1}, 20, rng);
  auto net = home.aggregate;
  net -= scene.generation;
  const auto apparent = apparent_generation(net);
  // Apparent generation correlates strongly with true generation.
  EXPECT_GT(stats::pearson(apparent.values(), scene.generation.values()),
            0.9);
}

TEST(ApparentGeneration, RejectsNoSolarSignal) {
  Rng rng(20);
  const auto home =
      synth::simulate_home(synth::home_a(), CivilDate{2017, 5, 1}, 3, rng);
  EXPECT_THROW(apparent_generation(home.aggregate), InvalidArgument);
}

}  // namespace
}  // namespace pmiot::solar
