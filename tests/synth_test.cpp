// Unit tests for the synthetic-data substrate: occupancy schedules,
// appliance models, whole homes, weather fields, and solar generation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <span>

#include "common/error.h"
#include "common/stats.h"
#include "synth/appliance.h"
#include "synth/home.h"
#include "synth/occupancy.h"
#include "synth/solar_gen.h"
#include "synth/trace_archive.h"
#include "synth/weather.h"

namespace pmiot::synth {
namespace {

// --- occupancy ---------------------------------------------------------------

TEST(Occupancy, HorizonAndRange) {
  Rng rng(1);
  const auto occ = simulate_occupancy(OccupancyProfile{}, CivilDate{2017, 6, 5},
                                      7, rng);
  EXPECT_EQ(occ.size(), 7u * kMinutesPerDay);
  for (int v : occ) EXPECT_TRUE(v == 0 || v == 1);
}

TEST(Occupancy, EmployedWeekdayHasDaytimeAbsence) {
  Rng rng(2);
  OccupancyProfile profile;
  profile.wfh_probability = 0.0;
  profile.evening_out_probability = 0.0;
  profile.vacation_probability = 0.0;
  // 2017-06-05 is a Monday.
  const auto occ = simulate_occupancy(profile, CivilDate{2017, 6, 5}, 5, rng);
  // Midday (13:00) should be vacant on working weekdays.
  int vacant_middays = 0;
  for (int d = 0; d < 5; ++d) {
    vacant_middays += occ[static_cast<std::size_t>(d) * kMinutesPerDay +
                          13 * 60] == 0;
  }
  EXPECT_GE(vacant_middays, 4);
  // Nights stay occupied.
  for (int d = 0; d < 5; ++d) {
    EXPECT_EQ(occ[static_cast<std::size_t>(d) * kMinutesPerDay + 3 * 60], 1);
  }
}

TEST(Occupancy, UnemployedProfileMostlyHome) {
  Rng rng(3);
  OccupancyProfile profile;
  profile.employed = false;
  profile.weekend_errands_mean = 0.5;
  profile.evening_out_probability = 0.0;
  profile.vacation_probability = 0.0;
  const auto occ =
      simulate_occupancy(profile, CivilDate{2017, 6, 5}, 14, rng);
  EXPECT_GT(occupied_fraction(occ), 0.9);
}

TEST(Occupancy, VacationEmptiesWholeDays) {
  Rng rng(4);
  OccupancyProfile profile;
  profile.vacation_probability = 1.0;  // trip starts immediately
  const auto occ = simulate_occupancy(profile, CivilDate{2017, 6, 5}, 2, rng);
  EXPECT_DOUBLE_EQ(occupied_fraction(occ), 0.0);
}

TEST(Occupancy, DownsampleMajority) {
  std::vector<int> occ{1, 1, 0, 0, 0, 1};
  const auto down = downsample_occupancy(occ, 3);
  ASSERT_EQ(down.size(), 2u);
  EXPECT_EQ(down[0], 1);  // 2 of 3 occupied
  EXPECT_EQ(down[1], 0);  // 1 of 3 occupied
}

TEST(Occupancy, RejectsBadArguments) {
  Rng rng(5);
  EXPECT_THROW(
      simulate_occupancy(OccupancyProfile{}, CivilDate{2017, 2, 30}, 1, rng),
      InvalidArgument);
  EXPECT_THROW(
      simulate_occupancy(OccupancyProfile{}, CivilDate{2017, 6, 1}, 0, rng),
      InvalidArgument);
}

// --- appliances ----------------------------------------------------------------

std::vector<int> always_home(int days) {
  return std::vector<int>(static_cast<std::size_t>(days) * kMinutesPerDay, 1);
}

std::vector<int> never_home(int days) {
  return std::vector<int>(static_cast<std::size_t>(days) * kMinutesPerDay, 0);
}

TEST(Appliance, CyclicalRunsRegardlessOfOccupancy) {
  Rng rng(6);
  const auto occupied = simulate_appliance(fridge(), always_home(2), rng);
  Rng rng2(6);
  const auto vacant = simulate_appliance(fridge(), never_home(2), rng2);
  // Identical draws: cyclical loads ignore occupancy entirely.
  EXPECT_EQ(occupied, vacant);
  EXPECT_GT(stats::max(occupied), 0.0);
}

TEST(Appliance, CyclicalDutyFractionMatchesModel) {
  Rng rng(7);
  const auto spec = fridge();
  const auto kw = simulate_appliance(spec, always_home(7), rng);
  std::size_t on = 0;
  for (double v : kw) on += v > 0.05 ? 1 : 0;
  const double duty = spec.duty_on_min / (spec.duty_on_min + spec.duty_off_min);
  EXPECT_NEAR(static_cast<double>(on) / static_cast<double>(kw.size()), duty,
              0.05);
}

TEST(Appliance, StartupSpikeAppears) {
  Rng rng(8);
  const auto kw = simulate_appliance(fridge(), always_home(2), rng);
  const double spike_level = fridge().steady_kw + fridge().startup_spike_kw;
  bool saw_spike = false;
  for (double v : kw) saw_spike |= std::fabs(v - spike_level) < 1e-9;
  EXPECT_TRUE(saw_spike);
}

TEST(Appliance, InteractiveLoadSilentWhenVacant) {
  Rng rng(9);
  const auto kw = simulate_appliance(toaster(), never_home(3), rng);
  EXPECT_DOUBLE_EQ(stats::max(kw), 0.0);
}

TEST(Appliance, InteractiveLoadActiveWhenHome) {
  Rng rng(10);
  const auto kw = simulate_appliance(lights(), always_home(7), rng);
  EXPECT_GT(stats::max(kw), 0.1);
}

TEST(Appliance, BackgroundInteractiveIgnoresOccupancy) {
  Rng rng(11);
  const auto kw = simulate_appliance(phantom_base(), never_home(1), rng);
  // Phantom load drains continuously.
  EXPECT_GT(stats::min(kw), 0.0);
}

TEST(Appliance, DryerHasHighAndLowPhases) {
  Rng rng(12);
  auto spec = dryer();
  spec.hourly_rate.fill(2.0);  // force frequent runs for the test
  const auto kw = simulate_appliance(spec, always_home(3), rng);
  bool saw_heater = false, saw_motor_only = false;
  for (double v : kw) {
    if (std::fabs(v - spec.steady_kw) < 0.01) saw_heater = true;
    if (std::fabs(v - spec.low_kw) < 0.01) saw_motor_only = true;
  }
  EXPECT_TRUE(saw_heater);
  EXPECT_TRUE(saw_motor_only);
}

TEST(Appliance, RejectsPartialDays) {
  Rng rng(13);
  std::vector<int> partial(100, 1);
  EXPECT_THROW(simulate_appliance(toaster(), partial, rng), InvalidArgument);
}

class CatalogEnergy : public ::testing::TestWithParam<int> {};

TEST_P(CatalogEnergy, EveryApplianceProducesBoundedPower) {
  const std::vector<ApplianceSpec> catalog = {
      toaster(),  microwave(), cooktop(),  dishwasher(), washer(),
      dryer(),    fridge(),    freezer(),  hrv(),        lights(),
      tv(),       computer(),  water_heater(), phantom_base(), misc_plugs()};
  const auto& spec = catalog[static_cast<std::size_t>(GetParam())];
  Rng rng(100 + static_cast<std::uint64_t>(GetParam()));
  const auto kw = simulate_appliance(spec, always_home(3), rng);
  EXPECT_EQ(kw.size(), 3u * kMinutesPerDay);
  for (double v : kw) {
    EXPECT_GE(v, 0.0) << spec.name;
    EXPECT_LE(v, spec.steady_kw + spec.startup_spike_kw + 3.0) << spec.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Catalog, CatalogEnergy, ::testing::Range(0, 15));

// --- homes ----------------------------------------------------------------------

TEST(Home, AggregateEqualsSumPlusNoise) {
  Rng rng(14);
  auto cfg = home_a();
  cfg.meter_noise_kw = 0.0;
  const auto trace = simulate_home(cfg, CivilDate{2017, 6, 1}, 2, rng);
  ts::TimeSeries sum = trace.per_appliance.front();
  for (std::size_t i = 1; i < trace.per_appliance.size(); ++i) {
    sum += trace.per_appliance[i];
  }
  for (std::size_t t = 0; t < sum.size(); ++t) {
    EXPECT_NEAR(trace.aggregate[t], sum[t], 1e-9);
  }
}

TEST(Home, TraceShapesConsistent) {
  Rng rng(15);
  const auto trace = simulate_home(home_b(), CivilDate{2017, 6, 1}, 3, rng);
  EXPECT_EQ(trace.aggregate.size(), 3u * kMinutesPerDay);
  EXPECT_EQ(trace.occupancy.size(), trace.aggregate.size());
  EXPECT_EQ(trace.per_appliance.size(), trace.appliance_names.size());
  EXPECT_NO_THROW(trace.appliance_index("fridge"));
  EXPECT_THROW(trace.appliance_index("nonexistent"), InvalidArgument);
}

TEST(Home, DeterministicGivenSeed) {
  Rng a(16), b(16);
  const auto t1 = simulate_home(home_a(), CivilDate{2017, 6, 1}, 2, a);
  const auto t2 = simulate_home(home_a(), CivilDate{2017, 6, 1}, 2, b);
  EXPECT_EQ(t1.aggregate, t2.aggregate);
  EXPECT_EQ(t1.occupancy, t2.occupancy);
}

TEST(Home, PopulationIsVariedButStable) {
  const auto pop1 = home_population(8);
  const auto pop2 = home_population(8);
  ASSERT_EQ(pop1.size(), 8u);
  // Same call, same population (the population is part of the benchmark).
  for (std::size_t i = 0; i < pop1.size(); ++i) {
    EXPECT_EQ(pop1[i].appliances.size(), pop2[i].appliances.size());
  }
  // Appliance fleets differ across homes.
  bool differs = false;
  for (std::size_t i = 1; i < pop1.size(); ++i) {
    differs |= pop1[i].appliances.size() != pop1[0].appliances.size();
  }
  EXPECT_TRUE(differs);
}

TEST(Home, OccupiedPeriodsUseMoreEnergy) {
  Rng rng(17);
  const auto trace = simulate_home(home_a(), CivilDate{2017, 6, 5}, 14, rng);
  std::vector<double> occupied, vacant;
  for (std::size_t t = 0; t < trace.aggregate.size(); ++t) {
    const int mod = trace.aggregate.minute_of_day_at(t);
    if (mod < 8 * 60 || mod >= 23 * 60) continue;  // waking hours only
    (trace.occupancy[t] != 0 ? occupied : vacant)
        .push_back(trace.aggregate[t]);
  }
  ASSERT_FALSE(occupied.empty());
  ASSERT_FALSE(vacant.empty());
  EXPECT_GT(stats::mean(occupied), stats::mean(vacant) * 1.3);
}

// --- weather ----------------------------------------------------------------------

TEST(Weather, CloudInUnitInterval) {
  WeatherField field(WeatherOptions{}, CivilDate{2017, 6, 1}, 5, 42);
  const auto series = field.cloud_series(geo::LatLon{40.0, -90.0});
  EXPECT_EQ(series.size(), 5u * 24);
  for (double c : series) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

TEST(Weather, DeterministicQueries) {
  WeatherField field(WeatherOptions{}, CivilDate{2017, 6, 1}, 3, 42);
  const geo::LatLon where{38.5, -100.25};
  EXPECT_EQ(field.cloud_series(where), field.cloud_series(where));
}

TEST(Weather, SpatialCorrelationDecaysWithDistance) {
  WeatherField field(WeatherOptions{}, CivilDate{2017, 6, 1}, 30, 7);
  const geo::LatLon base{40.0, -95.0};
  const auto s0 = field.cloud_series(base);
  const auto near = field.cloud_series(geo::LatLon{40.1, -95.0});   // ~11 km
  const auto mid = field.cloud_series(geo::LatLon{41.5, -95.0});    // ~170 km
  const auto far = field.cloud_series(geo::LatLon{46.0, -80.0});    // ~1300 km
  const double c_near = stats::pearson(s0, near);
  const double c_mid = stats::pearson(s0, mid);
  const double c_far = stats::pearson(s0, far);
  EXPECT_GT(c_near, c_mid);
  EXPECT_GT(c_mid, c_far);
  EXPECT_GT(c_near, 0.9);
  EXPECT_LT(c_far, 0.8);
}

TEST(Weather, StationGridCoversRegion) {
  WeatherOptions options;
  const auto grid = make_station_grid(options, 3, 4);
  ASSERT_EQ(grid.size(), 12u);
  EXPECT_DOUBLE_EQ(grid.front().location.lat, options.lat_min);
  EXPECT_DOUBLE_EQ(grid.back().location.lat, options.lat_max);
  EXPECT_DOUBLE_EQ(grid.front().location.lon, options.lon_min);
  EXPECT_DOUBLE_EQ(grid.back().location.lon, options.lon_max);
}

// --- solar -----------------------------------------------------------------------

TEST(Solar, ZeroAtNightPositiveAtNoon) {
  WeatherField field(WeatherOptions{}, CivilDate{2017, 6, 1}, 3, 11);
  Rng rng(18);
  SolarSite site{"test", {42.0, -72.0}, 6.0, 0.85, 1.0, 0.0};
  const auto gen = simulate_solar(site, field, CivilDate{2017, 6, 1}, 3, rng);
  // 08:00 UTC is ~4am local for lon -72: before sunrise in June.
  EXPECT_DOUBLE_EQ(gen[8 * 60], 0.0);
  const auto times = geo::solar_times_utc(site.location, CivilDate{2017, 6, 1});
  const auto noon_idx = static_cast<std::size_t>(times.solar_noon_utc_min);
  EXPECT_GT(gen[noon_idx], 1.0);
}

TEST(Solar, NeverExceedsCapacity) {
  WeatherField field(WeatherOptions{}, CivilDate{2017, 6, 1}, 5, 12);
  Rng rng(19);
  SolarSite site{"test", {35.0, -100.0}, 4.0, 0.9, 1.1, 0.05};
  const auto gen = simulate_solar(site, field, CivilDate{2017, 6, 1}, 5, rng);
  for (std::size_t i = 0; i < gen.size(); ++i) {
    EXPECT_GE(gen[i], 0.0);
    EXPECT_LE(gen[i], site.capacity_kw);
  }
}

TEST(Solar, HorizonMustBeCovered) {
  WeatherField field(WeatherOptions{}, CivilDate{2017, 6, 1}, 2, 13);
  Rng rng(20);
  SolarSite site{"test", {35.0, -100.0}, 4.0, 0.9, 1.0, 0.0};
  EXPECT_THROW(simulate_solar(site, field, CivilDate{2017, 6, 1}, 3, rng),
               InvalidArgument);
  EXPECT_THROW(simulate_solar(site, field, CivilDate{2017, 5, 31}, 2, rng),
               InvalidArgument);
}

TEST(Solar, CloudyDaysProduceLess) {
  // Compare the same site under a clear vs cloudy field by hacking the
  // mean cloudiness.
  WeatherOptions clear_opt;
  clear_opt.mean_cloud = 0.05;
  WeatherOptions cloudy_opt;
  cloudy_opt.mean_cloud = 0.85;
  WeatherField clear(clear_opt, CivilDate{2017, 6, 1}, 5, 14);
  WeatherField cloudy(cloudy_opt, CivilDate{2017, 6, 1}, 5, 14);
  Rng r1(21), r2(21);
  SolarSite site{"test", {40.0, -90.0}, 6.0, 0.85, 1.0, 0.0};
  const auto g_clear =
      simulate_solar(site, clear, CivilDate{2017, 6, 1}, 5, r1);
  const auto g_cloudy =
      simulate_solar(site, cloudy, CivilDate{2017, 6, 1}, 5, r2);
  EXPECT_GT(g_clear.energy_kwh(), g_cloudy.energy_kwh() * 1.5);
}

TEST(Solar, Fig5SitesAreTenDistinctStates) {
  const auto sites = fig5_sites();
  ASSERT_EQ(sites.size(), 10u);
  for (std::size_t i = 0; i < sites.size(); ++i) {
    for (std::size_t j = i + 1; j < sites.size(); ++j) {
      EXPECT_GT(geo::haversine_km(sites[i].location, sites[j].location), 100.0);
    }
  }
}

// --- trace archive -----------------------------------------------------------

bool same_bits(std::span<const double> a, std::span<const double> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

TEST(TraceArchive, RoundTripsBitExact) {
  Rng rng(17);
  const auto trace = simulate_home(home_b(), CivilDate{2017, 6, 5}, 2, rng);
  const std::string dir = testing::TempDir() + "pmiot_home_archive";
  std::filesystem::remove_all(dir);
  save_home_trace(dir, trace);

  // The zero-copy view serves every column straight from the mapping.
  const HomeTraceView view(dir);
  EXPECT_EQ(view.name(), trace.name);
  ASSERT_EQ(view.appliances(), trace.appliance_names.size());
  EXPECT_TRUE(same_bits(view.aggregate().values(), trace.aggregate.values()));
  ASSERT_EQ(view.occupancy_values().size(), trace.occupancy.size());
  for (std::size_t i = 0; i < trace.occupancy.size(); ++i) {
    EXPECT_EQ(view.occupancy_values()[i],
              static_cast<double>(trace.occupancy[i]));
  }
  for (std::size_t i = 0; i < view.appliances(); ++i) {
    EXPECT_EQ(view.appliance_name(i), trace.appliance_names[i]);
    EXPECT_TRUE(same_bits(view.appliance(i).values(),
                          trace.per_appliance[i].values()));
  }

  // Materializing gives back the exact trace that was saved.
  const auto loaded = load_home_trace(dir);
  EXPECT_EQ(loaded.name, trace.name);
  EXPECT_TRUE(loaded.aggregate.meta() == trace.aggregate.meta());
  EXPECT_TRUE(same_bits(loaded.aggregate.values(), trace.aggregate.values()));
  EXPECT_EQ(loaded.occupancy, trace.occupancy);
  EXPECT_EQ(loaded.appliance_names, trace.appliance_names);
  ASSERT_EQ(loaded.per_appliance.size(), trace.per_appliance.size());
  for (std::size_t i = 0; i < loaded.per_appliance.size(); ++i) {
    EXPECT_TRUE(same_bits(loaded.per_appliance[i].values(),
                          trace.per_appliance[i].values()));
  }
  std::filesystem::remove_all(dir);
}

TEST(TraceArchive, ValidatesTraceAndArchive) {
  HomeTrace malformed;
  malformed.name = "empty";
  const std::string dir = testing::TempDir() + "pmiot_home_archive_bad";
  EXPECT_THROW(save_home_trace(dir, malformed), InvalidArgument);
  EXPECT_THROW(HomeTraceView(testing::TempDir() + "no_such_archive"),
               InvalidArgument);
}

}  // namespace
}  // namespace pmiot::synth
