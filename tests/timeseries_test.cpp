// Unit tests for pmiot_timeseries: the TimeSeries container, window
// statistics, filters, edge detection, and ASCII rendering.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <limits>

#include "common/error.h"
#include "common/rng.h"
#include <sstream>

#include "timeseries/ascii_plot.h"
#include "timeseries/trace_io.h"
#include "timeseries/edges.h"
#include "timeseries/timeseries.h"

namespace pmiot::ts {
namespace {

TraceMeta minute_meta() { return TraceMeta{CivilDate{2017, 6, 1}, 0, 60}; }

TEST(TimeSeries, DefaultConstructedIsEmpty) {
  TimeSeries s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.meta().interval_seconds, 60);
}

TEST(TimeSeries, RejectsInvalidMeta) {
  EXPECT_THROW(TimeSeries(TraceMeta{CivilDate{2017, 2, 30}, 0, 60}),
               InvalidArgument);
  EXPECT_THROW(TimeSeries(TraceMeta{CivilDate{2017, 6, 1}, 1440, 60}),
               InvalidArgument);
  EXPECT_THROW(TimeSeries(TraceMeta{CivilDate{2017, 6, 1}, 0, 0}),
               InvalidArgument);
}

TEST(TimeSeries, SamplesPerDay) {
  EXPECT_EQ(TimeSeries(minute_meta()).samples_per_day(), 1440u);
  EXPECT_EQ(TimeSeries(TraceMeta{CivilDate{2017, 6, 1}, 0, 3600})
                .samples_per_day(),
            24u);
  TimeSeries weird(TraceMeta{CivilDate{2017, 6, 1}, 0, 7000});
  EXPECT_THROW(weird.samples_per_day(), InvalidArgument);
}

TEST(TimeSeries, DateAndMinuteIndexing) {
  TimeSeries s = make_zero_days(minute_meta(), 2);
  EXPECT_EQ(s.size(), 2880u);
  EXPECT_EQ(s.date_at(0), (CivilDate{2017, 6, 1}));
  EXPECT_EQ(s.minute_of_day_at(0), 0);
  EXPECT_EQ(s.minute_of_day_at(1439), 1439);
  EXPECT_EQ(s.date_at(1440), (CivilDate{2017, 6, 2}));
  EXPECT_EQ(s.minute_of_day_at(1440), 0);
}

TEST(TimeSeries, IndexingRespectsStartMinute) {
  TimeSeries s(TraceMeta{CivilDate{2017, 6, 1}, 23 * 60, 60},
               std::vector<double>(120, 0.0));
  EXPECT_EQ(s.minute_of_day_at(0), 23 * 60);
  EXPECT_EQ(s.date_at(59), (CivilDate{2017, 6, 1}));
  EXPECT_EQ(s.date_at(60), (CivilDate{2017, 6, 2}));
  EXPECT_EQ(s.minute_of_day_at(60), 0);
}

TEST(TimeSeries, SliceCarriesMeta) {
  TimeSeries s = make_zero_days(minute_meta(), 2);
  for (std::size_t i = 0; i < s.size(); ++i) s[i] = static_cast<double>(i);
  const auto sliced = s.slice(1500, 10);
  EXPECT_EQ(sliced.size(), 10u);
  EXPECT_DOUBLE_EQ(sliced[0], 1500.0);
  EXPECT_EQ(sliced.meta().start_date, (CivilDate{2017, 6, 2}));
  EXPECT_EQ(sliced.meta().start_minute, 60);
  EXPECT_THROW(s.slice(2880, 1), InvalidArgument);
}

TEST(TimeSeries, SliceRejectsOverflowingRange) {
  const TimeSeries s(minute_meta(), std::vector<double>(10, 1.0));
  // first + count would wrap around std::size_t; the check must not.
  EXPECT_THROW(s.slice(5, std::numeric_limits<std::size_t>::max()),
               InvalidArgument);
  EXPECT_THROW(s.slice(std::numeric_limits<std::size_t>::max(), 2),
               InvalidArgument);
  EXPECT_THROW(s.slice(4, 7), InvalidArgument);
  EXPECT_EQ(s.slice(5, 5).size(), 5u);
  EXPECT_EQ(s.slice(10, 0).size(), 0u);
}

TEST(TimeSeries, ResampleAveragesBuckets) {
  TimeSeries s(minute_meta(), {1, 3, 5, 7, 2, 2});
  const auto coarse = s.resample(120);
  ASSERT_EQ(coarse.size(), 3u);
  EXPECT_DOUBLE_EQ(coarse[0], 2.0);
  EXPECT_DOUBLE_EQ(coarse[1], 6.0);
  EXPECT_DOUBLE_EQ(coarse[2], 2.0);
  EXPECT_EQ(coarse.meta().interval_seconds, 120);
}

TEST(TimeSeries, ResampleDropsPartialBucket) {
  TimeSeries s(minute_meta(), {1, 1, 1, 9});
  EXPECT_EQ(s.resample(180).size(), 1u);
}

TEST(TimeSeries, ResampleRejectsNonMultiple) {
  TimeSeries s(minute_meta(), {1, 2});
  EXPECT_THROW(s.resample(90), InvalidArgument);
}

TEST(TimeSeries, ArithmeticAndValidation) {
  TimeSeries a(minute_meta(), {1, 2, 3});
  TimeSeries b(minute_meta(), {10, 20, 30});
  const auto sum = a + b;
  EXPECT_DOUBLE_EQ(sum[1], 22.0);
  const auto diff = b - a;
  EXPECT_DOUBLE_EQ(diff[2], 27.0);
  TimeSeries wrong(TraceMeta{CivilDate{2017, 6, 2}, 0, 60}, {1, 2, 3});
  EXPECT_THROW(a += wrong, InvalidArgument);
}

TEST(TimeSeries, ScaleAndClamp) {
  TimeSeries a(minute_meta(), {-1, 0.5, 2});
  a.scale(2.0).clamp_min(0.0);
  EXPECT_DOUBLE_EQ(a[0], 0.0);
  EXPECT_DOUBLE_EQ(a[1], 1.0);
  EXPECT_DOUBLE_EQ(a[2], 4.0);
}

TEST(TimeSeries, EnergyIntegratesPower) {
  // 60 minutes at 1 kW = 1 kWh.
  TimeSeries s(minute_meta(), std::vector<double>(60, 1.0));
  EXPECT_NEAR(s.energy_kwh(), 1.0, 1e-12);
  // Hourly data: one sample of 2 kW = 2 kWh.
  TimeSeries hourly(TraceMeta{CivilDate{2017, 6, 1}, 0, 3600}, {2.0});
  EXPECT_NEAR(hourly.energy_kwh(), 2.0, 1e-12);
}

TEST(WindowStats, NonOverlapping) {
  const std::vector<double> xs{1, 1, 5, 5, 2, 2, 9};
  const auto ws = window_stats(xs, 2, 2);
  ASSERT_EQ(ws.size(), 3u);  // trailing odd sample dropped
  EXPECT_DOUBLE_EQ(ws[0].mean, 1.0);
  EXPECT_DOUBLE_EQ(ws[1].mean, 5.0);
  EXPECT_DOUBLE_EQ(ws[1].variance, 0.0);
  EXPECT_EQ(ws[2].first, 4u);
  EXPECT_DOUBLE_EQ(ws[2].range, 0.0);
}

TEST(WindowStats, Overlapping) {
  const std::vector<double> xs{0, 2, 4, 6};
  const auto ws = window_stats(xs, 2, 1);
  ASSERT_EQ(ws.size(), 3u);
  EXPECT_DOUBLE_EQ(ws[0].mean, 1.0);
  EXPECT_DOUBLE_EQ(ws[2].mean, 5.0);
}

TEST(WindowStats, ShortInputYieldsNothing) {
  const std::vector<double> xs{1.0};
  EXPECT_TRUE(window_stats(xs, 2, 2).empty());
  EXPECT_THROW(window_stats(xs, 0, 1), InvalidArgument);
}

TEST(MovingAverage, SmoothsAndPreservesLength) {
  const std::vector<double> xs{0, 0, 10, 0, 0};
  const auto smooth = moving_average(xs, 1);
  ASSERT_EQ(smooth.size(), xs.size());
  EXPECT_NEAR(smooth[2], 10.0 / 3.0, 1e-12);
  EXPECT_NEAR(smooth[0], 0.0, 1e-12);
}

TEST(MedianFilter, KillsSpikesKeepsSteps) {
  std::vector<double> xs(20, 1.0);
  xs[10] = 100.0;  // lone spike
  const auto filtered = median_filter(xs, 2);
  EXPECT_DOUBLE_EQ(filtered[10], 1.0);
  // A genuine step survives.
  std::vector<double> step(20, 0.0);
  for (std::size_t i = 10; i < 20; ++i) step[i] = 5.0;
  const auto fstep = median_filter(step, 2);
  EXPECT_DOUBLE_EQ(fstep[15], 5.0);
  EXPECT_DOUBLE_EQ(fstep[5], 0.0);
}

TEST(Edges, DetectsSimpleSteps) {
  const std::vector<double> xs{0, 0, 2, 2, 2, 0, 0};
  const auto edges = detect_edges(xs, 1.0);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].index, 2u);
  EXPECT_DOUBLE_EQ(edges[0].delta, 2.0);
  EXPECT_TRUE(edges[0].rising());
  EXPECT_EQ(edges[1].index, 5u);
  EXPECT_DOUBLE_EQ(edges[1].delta, -2.0);
  EXPECT_FALSE(edges[1].rising());
}

TEST(Edges, MergesMonotoneRamp) {
  const std::vector<double> xs{0, 1, 2, 3, 3, 3};
  const auto edges = detect_edges(xs, 1.0);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_DOUBLE_EQ(edges[0].delta, 3.0);
  EXPECT_EQ(edges[0].index, 1u);
}

TEST(Edges, ThresholdFiltersSmallChanges) {
  const std::vector<double> xs{0, 0.2, 0, 0.2, 0};
  EXPECT_TRUE(detect_edges(xs, 0.5).empty());
  EXPECT_EQ(detect_edges(xs, 0.1).size(), 4u);
  EXPECT_THROW(detect_edges(xs, 0.0), InvalidArgument);
}

TEST(Edges, CountInRange) {
  const std::vector<double> xs{0, 2, 0, 2, 0, 2, 0};
  const auto edges = detect_edges(xs, 1.0);
  ASSERT_EQ(edges.size(), 6u);
  EXPECT_EQ(count_edges_in_range(edges, 0, 3), 2u);  // edges at indices 1, 2
  EXPECT_EQ(count_edges_in_range(edges, 0, xs.size()), edges.size());
  EXPECT_EQ(count_edges_in_range(edges, 100, 10), 0u);
}

TEST(AsciiPlot, ProducesExpectedShape) {
  std::vector<double> xs(100, 0.0);
  for (std::size_t i = 40; i < 60; ++i) xs[i] = 3.0;
  PlotOptions options;
  options.width = 50;
  options.height = 5;
  const auto plot = ascii_plot(xs, options);
  EXPECT_NE(plot.find('#'), std::string::npos);
  // 5 rows + axis line.
  EXPECT_EQ(static_cast<int>(std::count(plot.begin(), plot.end(), '\n')), 6);
}

TEST(AsciiPlot, EmptySeries) {
  EXPECT_EQ(ascii_plot({}, PlotOptions{}), "(empty series)\n");
}

TEST(AsciiBinaryStrip, MajorityDownsampling) {
  std::vector<int> labels(100, 0);
  for (std::size_t i = 50; i < 100; ++i) labels[i] = 1;
  const auto strip = ascii_binary_strip(labels, 10);
  EXPECT_EQ(strip, ".....#####");
}

TEST(TraceIo, RoundTripsThroughCsv) {
  Rng rng(1);
  TimeSeries s(TraceMeta{CivilDate{2017, 6, 1}, 30, 300},
               std::vector<double>{});
  for (int i = 0; i < 100; ++i) s.push_back(rng.uniform(0.0, 8.0));
  std::ostringstream os;
  write_csv(os, s, 9);
  std::istringstream is(os.str());
  const auto loaded = read_csv(is);
  ASSERT_EQ(loaded.size(), s.size());
  EXPECT_EQ(loaded.meta(), s.meta());
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_NEAR(loaded[i], s[i], 1e-8);
  }
}

TEST(TraceIo, HeaderCarriesTimestamps) {
  TimeSeries s(TraceMeta{CivilDate{2017, 6, 1}, 0, 60}, {1.0, 2.0});
  std::ostringstream os;
  write_csv(os, s);
  const auto text = os.str();
  EXPECT_NE(text.find("# pmiot-trace v1"), std::string::npos);
  EXPECT_NE(text.find("2017-06-01T00:00,"), std::string::npos);
  EXPECT_NE(text.find("2017-06-01T00:01,"), std::string::npos);
}

TEST(TraceIo, RoundTripsThroughCrlfCsv) {
  // A trace written or edited on Windows carries \r\n line endings; the
  // reader must strip the trailing \r from the header, the metadata line,
  // and every data row.
  Rng rng(7);
  TimeSeries s(TraceMeta{CivilDate{2017, 6, 1}, 30, 300},
               std::vector<double>{});
  for (int i = 0; i < 50; ++i) s.push_back(rng.uniform(0.0, 8.0));
  std::ostringstream os;
  write_csv(os, s, 9);

  std::string crlf;
  for (char c : os.str()) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  std::istringstream is(crlf);
  const auto loaded = read_csv(is);
  ASSERT_EQ(loaded.size(), s.size());
  EXPECT_EQ(loaded.meta(), s.meta());
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_NEAR(loaded[i], s[i], 1e-8);
  }

  // And a CRLF trace re-serializes identically to its LF twin.
  std::ostringstream os2;
  write_csv(os2, loaded, 9);
  std::istringstream lf(os.str());
  std::ostringstream os3;
  write_csv(os3, read_csv(lf), 9);
  EXPECT_EQ(os2.str(), os3.str());
}

TEST(TraceIo, ToleratesTrailingBlankLine) {
  const std::string base =
      "# pmiot-trace v1\n"
      "# start=2017-06-01 start_minute=0 interval_seconds=60\n"
      "2017-06-01T00:00,1.0\n"
      "2017-06-01T00:01,2.0\n";
  for (const char* tail : {"\n", "\r\n", ""}) {
    std::istringstream is(base + tail);
    const auto loaded = read_csv(is);
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_DOUBLE_EQ(loaded[0], 1.0);
    EXPECT_DOUBLE_EQ(loaded[1], 2.0);
  }
}

TEST(TraceIo, CrlfDoesNotMaskCorruption) {
  // Only one trailing \r is forgiven; an interior \r is still junk.
  std::istringstream is(
      "# pmiot-trace v1\r\n"
      "# start=2017-06-01 start_minute=0 interval_seconds=60\r\n"
      "2017-06-01T00:00,1.0\r\r\n");
  EXPECT_THROW(read_csv(is), pmiot::InvalidArgument);
}

TEST(TraceIo, RejectsCorruptedInput) {
  {
    std::istringstream is("not a trace\n");
    EXPECT_THROW(read_csv(is), pmiot::InvalidArgument);
  }
  {
    std::istringstream is(
        "# pmiot-trace v1\n"
        "# start=2017-06-01 start_minute=0 interval_seconds=60\n"
        "2017-06-01T00:05,1.0\n");  // timestamp off the declared grid
    EXPECT_THROW(read_csv(is), pmiot::InvalidArgument);
  }
  {
    std::istringstream is(
        "# pmiot-trace v1\n"
        "# start=2017-06-01 start_minute=0 interval_seconds=60\n"
        "2017-06-01T00:00,banana\n");
    EXPECT_THROW(read_csv(is), pmiot::InvalidArgument);
  }
}

// --- binary columnar container ---

TEST(TraceIo, BinaryRoundTripsBitExact) {
  Rng rng(11);
  TimeSeries s(TraceMeta{CivilDate{2017, 6, 1}, 30, 300},
               std::vector<double>{});
  for (int i = 0; i < 257; ++i) s.push_back(rng.uniform(-5.0, 8.0));
  std::ostringstream os(std::ios::binary);
  write_binary(os, s);
  std::istringstream is(os.str(), std::ios::binary);
  const auto loaded = read_binary(is);
  EXPECT_EQ(loaded.meta(), s.meta());
  ASSERT_EQ(loaded.size(), s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded[i]),
              std::bit_cast<std::uint64_t>(s[i]));
  }
}

TEST(TraceIo, BinaryEmptySeries) {
  const TimeSeries s(TraceMeta{CivilDate{2020, 2, 29}, 15, 30},
                     std::vector<double>{});
  std::ostringstream os(std::ios::binary);
  write_binary(os, s);
  std::istringstream is(os.str(), std::ios::binary);
  const auto loaded = read_binary(is);
  EXPECT_EQ(loaded.meta(), s.meta());
  EXPECT_EQ(loaded.size(), 0u);
}

TEST(TraceIo, BinarySingleSample) {
  const TimeSeries s(TraceMeta{CivilDate{2017, 6, 1}, 0, 60}, {42.5});
  std::ostringstream os(std::ios::binary);
  write_binary(os, s);
  std::istringstream is(os.str(), std::ios::binary);
  const auto loaded = read_binary(is);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded[0], 42.5);
}

TEST(TraceIo, BinaryCarriesNonFiniteValues) {
  // The CSV format cannot represent these; the binary container stores the
  // raw bit patterns, so NaN payloads, infinities, and -0.0 all survive.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const TimeSeries s(TraceMeta{CivilDate{2017, 6, 1}, 0, 60},
                     {nan, inf, -inf, -0.0, 1.0});
  std::ostringstream os(std::ios::binary);
  write_binary(os, s);
  std::istringstream is(os.str(), std::ios::binary);
  const auto loaded = read_binary(is);
  ASSERT_EQ(loaded.size(), s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded[i]),
              std::bit_cast<std::uint64_t>(s[i]))
        << "sample " << i;
  }
}

TEST(TraceIo, BinaryRejectsCorruption) {
  const TimeSeries s(TraceMeta{CivilDate{2017, 6, 1}, 0, 60}, {1.0, 2.0});
  std::ostringstream os(std::ios::binary);
  write_binary(os, s);
  const std::string good = os.str();
  {
    std::istringstream is(std::string("XXXXXXXX") + good.substr(8),
                          std::ios::binary);
    EXPECT_THROW(read_binary(is), pmiot::InvalidArgument);  // wrong magic
  }
  {
    std::string bumped = good;
    bumped[8] = 9;  // unsupported version
    std::istringstream is(bumped, std::ios::binary);
    EXPECT_THROW(read_binary(is), pmiot::InvalidArgument);
  }
  {
    std::istringstream is(good.substr(0, 10), std::ios::binary);
    EXPECT_THROW(read_binary(is), pmiot::InvalidArgument);  // cut header
  }
  {
    std::istringstream is(good.substr(0, 80), std::ios::binary);
    EXPECT_THROW(read_binary(is), pmiot::InvalidArgument);  // cut directory
  }
  {
    std::istringstream is(good.substr(0, good.size() - 8), std::ios::binary);
    EXPECT_THROW(read_binary(is), pmiot::InvalidArgument);  // cut column
  }
  {
    std::istringstream is(std::string(), std::ios::binary);
    EXPECT_THROW(read_binary(is), pmiot::InvalidArgument);  // empty file
  }
}

TEST(TraceIo, CsvBinaryCsvRoundTripIsExact) {
  // CSV -> binary -> CSV must reproduce the CSV serialization byte for
  // byte: the binary side stores the parsed doubles bit-exactly. The CRLF
  // variant exercises the same path through the Windows-style reader.
  const std::string base =
      "# pmiot-trace v1\n"
      "# start=2017-06-01 start_minute=30 interval_seconds=300\n"
      "2017-06-01T00:30,0.412345678\n"
      "2017-06-01T00:35,7.125\n"
      "2017-06-01T00:40,-3.000000001\n";
  std::string crlf;
  for (char c : base) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  for (const std::string& text : {base, crlf}) {
    std::istringstream csv_in(text);
    const auto from_csv = read_csv(csv_in);
    std::ostringstream bin(std::ios::binary);
    write_binary(bin, from_csv);
    std::istringstream bin_in(bin.str(), std::ios::binary);
    const auto from_binary = read_binary(bin_in);
    EXPECT_EQ(from_binary, from_csv);
    std::ostringstream csv_a, csv_b;
    write_csv(csv_a, from_csv, 9);
    write_csv(csv_b, from_binary, 9);
    EXPECT_EQ(csv_a.str(), csv_b.str());
  }
}

TEST(TraceIo, TraceViewMapsFileZeroCopy) {
  Rng rng(13);
  TimeSeries s(TraceMeta{CivilDate{2017, 6, 1}, 0, 60},
               std::vector<double>{});
  for (int i = 0; i < 1000; ++i) s.push_back(rng.uniform(0.0, 3.0));
  const std::string path = testing::TempDir() + "pmiot_trace_view.bin";
  save_binary(path, s);

  {
    TraceView view(path);
    EXPECT_EQ(view.meta(), s.meta());
    ASSERT_EQ(view.size(), s.size());
    const auto vals = view.values();
    for (std::size_t i = 0; i < s.size(); ++i) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(vals[i]),
                std::bit_cast<std::uint64_t>(s[i]));
    }
    EXPECT_EQ(view.materialize(), s);

    // Moving the view keeps the mapping alive and empties the source.
    TraceView moved(std::move(view));
    EXPECT_EQ(moved.size(), s.size());
    EXPECT_EQ(moved.materialize(), s);
  }
  EXPECT_EQ(load_binary(path), s);
  std::remove(path.c_str());
}

TEST(TraceIo, LoadTraceSniffsFormat) {
  const TimeSeries s(TraceMeta{CivilDate{2017, 6, 1}, 0, 60},
                     {1.0, 2.5, 3.25});
  const std::string bin_path = testing::TempDir() + "pmiot_sniff.bin";
  const std::string csv_path = testing::TempDir() + "pmiot_sniff.csv";
  save_binary(bin_path, s);
  save_csv(csv_path, s);
  EXPECT_EQ(load_trace(bin_path), s);
  EXPECT_EQ(load_trace(csv_path), s);
  std::remove(bin_path.c_str());
  std::remove(csv_path.c_str());
}

class ResampleFactors : public ::testing::TestWithParam<int> {};

TEST_P(ResampleFactors, EnergyIsPreserved) {
  // Mean-aggregation preserves total energy for exact multiples.
  const int factor = GetParam();
  TimeSeries s = make_zero_days(minute_meta(), 1);
  Rng rng(42);
  for (std::size_t i = 0; i < s.size(); ++i) s[i] = rng.uniform(0.0, 5.0);
  const auto coarse = s.resample(60 * factor);
  EXPECT_NEAR(coarse.energy_kwh(), s.energy_kwh(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Factors, ResampleFactors,
                         ::testing::Values(2, 3, 5, 15, 60, 1440));

}  // namespace
}  // namespace pmiot::ts
