// Tests for the privacy-preserving smart meter stack: modular arithmetic,
// SHA-256, Pedersen commitments, sigma proofs, and verifiable billing.
#include <gtest/gtest.h>

#include <cstring>

#include "common/error.h"
#include "zkp/meter.h"
#include "zkp/modmath.h"
#include "zkp/pedersen.h"
#include "zkp/proofs.h"
#include "zkp/sha256.h"

namespace pmiot::zkp {
namespace {

// --- modular arithmetic --------------------------------------------------------

TEST(ModMath, MulmodMatchesSmallCases) {
  EXPECT_EQ(mulmod(7, 9, 10), 3u);
  EXPECT_EQ(mulmod(0, 12345, 7), 0u);
  // Overflow territory: (2^62) * 3 mod (2^61-1).
  const u64 big = 1ULL << 62;
  const u64 m = (1ULL << 61) - 1;
  EXPECT_EQ(mulmod(big, 3, m), static_cast<u64>((static_cast<unsigned __int128>(big) * 3) % m));
}

TEST(ModMath, PowmodKnownValues) {
  EXPECT_EQ(powmod(2, 10, 1000), 24u);
  EXPECT_EQ(powmod(5, 0, 7), 1u);
  // Fermat: a^(p-1) = 1 mod p.
  const u64 p = 1000000007ULL;
  EXPECT_EQ(powmod(123456789ULL, p - 1, p), 1u);
}

TEST(ModMath, InvmodRoundTrips) {
  const u64 m = 1000000007ULL;
  for (u64 a : {2ULL, 3ULL, 999999999ULL, 123456789ULL}) {
    EXPECT_EQ(mulmod(a, invmod(a, m), m), 1u);
  }
  EXPECT_THROW(invmod(6, 9), InvalidArgument);  // gcd 3
}

TEST(ModMath, AddSubMod) {
  EXPECT_EQ(addmod(8, 9, 10), 7u);
  EXPECT_EQ(submod(3, 9, 10), 4u);
  // Near-overflow addition.
  const u64 m = ~0ULL - 58;
  EXPECT_EQ(addmod(m - 1, m - 2, m), m - 3);
}

TEST(ModMath, MillerRabinKnownPrimes) {
  for (u64 p : {2ULL, 3ULL, 61ULL, 2147483647ULL, 1000000007ULL,
                2305843009213693951ULL /* 2^61-1 */}) {
    EXPECT_TRUE(is_prime(p)) << p;
  }
  for (u64 c : {1ULL, 4ULL, 561ULL /* Carmichael */, 1000000008ULL,
                2147483649ULL}) {
    EXPECT_FALSE(is_prime(c)) << c;
  }
}

TEST(ModMath, SafePrimeHasPrimeHalf) {
  const u64 p = next_safe_prime(1000);
  EXPECT_TRUE(is_prime(p));
  EXPECT_TRUE(is_prime((p - 1) / 2));
  EXPECT_GE(p, 1000u);
  EXPECT_EQ(next_safe_prime(5), 5u);  // 5 = 2*2+1, both prime
}

// --- SHA-256 ------------------------------------------------------------------

std::string hex(const std::array<std::uint8_t, 32>& d) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (auto b : d) {
    out += digits[b >> 4];
    out += digits[b & 0xf];
  }
  return out;
}

TEST(Sha256, EmptyStringKat) {
  Sha256 h;
  EXPECT_EQ(hex(h.digest()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, AbcKat) {
  EXPECT_EQ(hex(Sha256::hash("abc", 3)),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockKat) {
  const std::string msg =
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  EXPECT_EQ(hex(Sha256::hash(msg.data(), msg.size())),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex(h.digest()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Sha256 a;
  a.update("hello ").update("world");
  const auto one_shot = Sha256::hash("hello world", 11);
  EXPECT_EQ(hex(a.digest()), hex(one_shot));
}

TEST(Sha256, DigestTwiceThrows) {
  Sha256 h;
  h.digest();
  EXPECT_THROW(h.digest(), InvalidArgument);
}

TEST(Sha256, TruncatedTakesLeadingBytes) {
  std::array<std::uint8_t, 32> d{};
  d[0] = 0x01;
  d[7] = 0xff;
  EXPECT_EQ(Sha256::truncated(d), 0x01000000000000ffULL);
}

// --- Pedersen ------------------------------------------------------------------

GroupParams test_params() { return GroupParams::generate(40, 7); }

TEST(Pedersen, ParametersAreWellFormed) {
  const auto params = test_params();
  EXPECT_TRUE(is_prime(params.p));
  EXPECT_TRUE(is_prime(params.q));
  EXPECT_EQ(params.p, 2 * params.q + 1);
  EXPECT_TRUE(params.in_group(params.g));
  EXPECT_TRUE(params.in_group(params.h));
  EXPECT_NE(params.g, params.h);
}

TEST(Pedersen, CommitmentIsHomomorphic) {
  const auto params = test_params();
  Rng rng(1);
  const u64 m1 = 123, m2 = 456;
  const u64 r1 = random_scalar(params, rng), r2 = random_scalar(params, rng);
  const u64 c1 = commit(params, m1, r1);
  const u64 c2 = commit(params, m2, r2);
  EXPECT_EQ(mulmod(c1, c2, params.p),
            commit(params, m1 + m2, addmod(r1, r2, params.q)));
}

TEST(Pedersen, DifferentRandomnessHidesMessage) {
  const auto params = test_params();
  Rng rng(2);
  const u64 c1 = commit(params, 42, random_scalar(params, rng));
  const u64 c2 = commit(params, 42, random_scalar(params, rng));
  EXPECT_NE(c1, c2);
}

TEST(Pedersen, ScalarExponentHomomorphism) {
  const auto params = test_params();
  Rng rng(3);
  const u64 m = 10, r = random_scalar(params, rng);
  const u64 c = commit(params, m, r);
  // c^5 = commit(5m, 5r)
  EXPECT_EQ(powmod(c, 5, params.p),
            commit(params, 5 * m, mulmod(5, r, params.q)));
}

TEST(Pedersen, GroupMembership) {
  const auto params = test_params();
  EXPECT_FALSE(params.in_group(0));
  EXPECT_FALSE(params.in_group(params.p));
  EXPECT_TRUE(params.in_group(1));
}

// --- proofs --------------------------------------------------------------------

TEST(Proofs, OpeningAcceptsHonestProver) {
  const auto params = test_params();
  Rng rng(4);
  const u64 m = 777, r = random_scalar(params, rng);
  const u64 c = commit(params, m, r);
  const auto proof = prove_opening(params, m, r, rng);
  EXPECT_TRUE(verify_opening(params, c, proof));
}

TEST(Proofs, OpeningRejectsWrongCommitment) {
  const auto params = test_params();
  Rng rng(5);
  const u64 m = 777, r = random_scalar(params, rng);
  const auto proof = prove_opening(params, m, r, rng);
  const u64 other = commit(params, m + 1, r);
  EXPECT_FALSE(verify_opening(params, other, proof));
}

TEST(Proofs, OpeningRejectsTamperedResponses) {
  const auto params = test_params();
  Rng rng(6);
  const u64 m = 9, r = random_scalar(params, rng);
  const u64 c = commit(params, m, r);
  auto proof = prove_opening(params, m, r, rng);
  proof.sm = addmod(proof.sm, 1, params.q);
  EXPECT_FALSE(verify_opening(params, c, proof));
}

TEST(Proofs, BitProofBothValues) {
  const auto params = test_params();
  Rng rng(7);
  for (int bit : {0, 1}) {
    const u64 r = random_scalar(params, rng);
    const u64 c = commit(params, static_cast<u64>(bit), r);
    const auto proof = prove_bit(params, bit, r, rng);
    EXPECT_TRUE(verify_bit(params, c, proof)) << "bit " << bit;
  }
}

TEST(Proofs, BitProofRejectsNonBit) {
  const auto params = test_params();
  Rng rng(8);
  const u64 r = random_scalar(params, rng);
  // A commitment to 2 cannot satisfy either branch.
  const u64 c2 = commit(params, 2, r);
  const auto proof = prove_bit(params, 1, r, rng);  // proof for a 1-commit
  EXPECT_FALSE(verify_bit(params, c2, proof));
  EXPECT_THROW(prove_bit(params, 2, r, rng), InvalidArgument);
}

TEST(Proofs, BitProofRejectsChallengeTampering) {
  const auto params = test_params();
  Rng rng(9);
  const u64 r = random_scalar(params, rng);
  const u64 c = commit(params, 1, r);
  auto proof = prove_bit(params, 1, r, rng);
  proof.c0 = addmod(proof.c0, 1, params.q);
  EXPECT_FALSE(verify_bit(params, c, proof));
}

TEST(Proofs, RangeProofAcceptsInRange) {
  const auto params = test_params();
  Rng rng(10);
  for (u64 m : {0ULL, 1ULL, 255ULL, 65535ULL}) {
    const u64 r = random_scalar(params, rng);
    const u64 c = commit(params, m, r);
    const auto proof = prove_range(params, m, r, 16, rng);
    EXPECT_TRUE(verify_range(params, c, proof)) << m;
  }
}

TEST(Proofs, RangeProofRejectsOutOfRangeAtProveTime) {
  const auto params = test_params();
  Rng rng(11);
  const u64 r = random_scalar(params, rng);
  EXPECT_THROW(prove_range(params, 70000, r, 16, rng), InvalidArgument);
}

TEST(Proofs, RangeProofBindsToCommitment) {
  const auto params = test_params();
  Rng rng(12);
  const u64 r = random_scalar(params, rng);
  const auto proof = prove_range(params, 100, r, 16, rng);
  const u64 wrong = commit(params, 101, r);
  EXPECT_FALSE(verify_range(params, wrong, proof));
}

TEST(Proofs, SizesAreReported) {
  const auto params = test_params();
  Rng rng(13);
  const u64 r = random_scalar(params, rng);
  const auto range = prove_range(params, 100, r, 16, rng);
  EXPECT_EQ(proof_size_bytes(range), 16u * 8 + 16u * 48 + 8);
  EXPECT_EQ(proof_size_bytes(OpeningProof{}), 24u);
  EXPECT_EQ(proof_size_bytes(BitProof{}), 48u);
}

// --- meter ---------------------------------------------------------------------

TEST(Meter, BillVerifiesAgainstCommitments) {
  const auto params = test_params();
  PrivateMeter meter(params, 21);
  const std::vector<u64> readings{100, 0, 2500, 740, 333};
  for (u64 wh : readings) meter.record(wh);
  const auto prices = time_of_use_prices(readings.size(), 3600, 12, 30);
  const auto response = meter.bill_response(prices);
  u64 expected = 0;
  for (std::size_t i = 0; i < readings.size(); ++i) {
    expected += prices[i] * readings[i];
  }
  EXPECT_EQ(response.bill, expected);
  EXPECT_TRUE(verify_bill(params, meter.commitments(), prices, response));
}

TEST(Meter, TamperedBillRejected) {
  const auto params = test_params();
  PrivateMeter meter(params, 22);
  for (u64 wh : {10ULL, 20ULL, 30ULL}) meter.record(wh);
  const std::vector<u64> prices{1, 1, 1};
  auto response = meter.bill_response(prices);
  response.bill += 1;  // meter tries to shave a watt-hour
  EXPECT_FALSE(verify_bill(params, meter.commitments(), prices, response));
}

TEST(Meter, TamperedCommitmentRejected) {
  const auto params = test_params();
  PrivateMeter meter(params, 23);
  for (u64 wh : {10ULL, 20ULL}) meter.record(wh);
  const std::vector<u64> prices{2, 3};
  const auto response = meter.bill_response(prices);
  std::vector<u64> commitments(meter.commitments().begin(),
                               meter.commitments().end());
  commitments[0] = mulmod(commitments[0], params.g, params.p);
  EXPECT_FALSE(verify_bill(params, commitments, prices, response));
}

TEST(Meter, RangeProofsCoverReadings) {
  const auto params = test_params();
  PrivateMeter meter(params, 24);
  meter.record(4321);
  Rng rng(25);
  const auto proof = meter.range_proof(0, 16, rng);
  EXPECT_TRUE(verify_range(params, meter.commitments()[0], proof));
}

TEST(Meter, RejectsOversizedReading) {
  const auto params = test_params();
  PrivateMeter meter(params, 26);
  EXPECT_THROW(meter.record(1ULL << 16), InvalidArgument);
}

TEST(Meter, TimeOfUsePricing) {
  // 24 hourly intervals: peak (16:00-21:00) costs more.
  const auto prices = time_of_use_prices(24, 3600, 10, 25);
  EXPECT_EQ(prices[12], 10u);
  EXPECT_EQ(prices[17], 25u);
  EXPECT_EQ(prices[21], 10u);
}

class GroupBits : public ::testing::TestWithParam<int> {};

TEST_P(GroupBits, ProtocolWorksAcrossGroupSizes) {
  const auto params = GroupParams::generate(GetParam(), 31);
  PrivateMeter meter(params, 32);
  for (u64 wh : {500ULL, 1500ULL, 0ULL}) meter.record(wh);
  const std::vector<u64> prices{3, 1, 7};
  const auto response = meter.bill_response(prices);
  EXPECT_TRUE(verify_bill(params, meter.commitments(), prices, response));
}

INSTANTIATE_TEST_SUITE_P(Bits, GroupBits, ::testing::Values(32, 40, 50, 62));

}  // namespace
}  // namespace pmiot::zkp
