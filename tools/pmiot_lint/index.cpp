#include "pmiot_lint/index.h"

#include <unordered_set>

namespace pmiot::lint {
namespace {

bool is_ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

bool is_hspace(char c) { return c == ' ' || c == '\t' || c == '\r'; }

const std::unordered_set<std::string>& keywords() {
  static const std::unordered_set<std::string> kSet = {
      "if",        "else",      "for",        "while",     "do",
      "switch",    "case",      "default",    "return",    "break",
      "continue",  "goto",      "sizeof",     "alignof",   "alignas",
      "new",       "delete",    "catch",      "try",       "throw",
      "operator",  "static_assert", "decltype", "noexcept", "requires",
      "typeid",    "co_await",  "co_return",  "co_yield",  "using",
      "typedef",   "template",  "typename",   "struct",    "class",
      "union",     "enum",      "namespace",  "public",    "private",
      "protected", "virtual",   "static",     "inline",    "constexpr",
      "consteval", "constinit", "extern",     "register",  "thread_local",
      "mutable",   "volatile",  "const",      "friend",    "explicit",
      "export",    "asm",       "this",       "nullptr",   "true",
      "false",     "and",       "or",         "not",       "defined",
      "assert",
  };
  return kSet;
}

/// Direct write sinks: constructs that move bytes out of the process
/// (files, stdout/stderr). Read-side streams (ifstream/istream) and
/// in-memory formatting (snprintf, ostringstream) are deliberately absent.
const std::unordered_set<std::string>& sink_tokens() {
  static const std::unordered_set<std::string> kSet = {
      "ofstream", "fstream", "fopen",  "freopen", "fwrite",
      "fputs",    "fputc",   "fprintf", "printf", "puts",
      "putchar",  "cout",    "cerr",   "clog",
  };
  return kSet;
}

/// Definite heap allocations. Container growth (push_back/resize/reserve)
/// is deliberately absent: warm-arena growth is legal in no-alloc paths
/// and is policed at runtime by the counting-operator-new self-checks.
const std::unordered_set<std::string>& alloc_tokens() {
  static const std::unordered_set<std::string> kSet = {
      "make_unique", "make_shared", "malloc",
      "calloc",      "realloc",     "strdup",
      "aligned_alloc",
  };
  return kSet;
}

bool is_punct(const Token& t, char c) {
  return t.kind == TokenKind::kPunct && t.text.size() == 1 && t.text[0] == c;
}

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

std::size_t find_balanced(const std::vector<Token>& t, std::size_t open,
                          char open_c, char close_c) {
  int depth = 0;
  for (std::size_t k = open; k < t.size(); ++k) {
    if (is_punct(t[k], open_c)) {
      ++depth;
    } else if (is_punct(t[k], close_c)) {
      if (--depth == 0) return k;
    }
  }
  return kNpos;
}

/// Decoration walk after the parameter list's ')': returns the token index
/// of the body '{' when `name ( ... )` at `close` heads a function
/// definition, kNpos otherwise.
std::size_t find_body_open(const std::vector<Token>& t, std::size_t close) {
  std::size_t j = close + 1;
  while (j < t.size()) {
    const Token& d = t[j];
    if (d.kind == TokenKind::kIdentifier) {
      if (d.text == "const" || d.text == "override" || d.text == "final" ||
          d.text == "mutable") {
        ++j;
        continue;
      }
      if (d.text == "noexcept" || d.text == "throw" || d.text == "requires") {
        ++j;
        if (j < t.size() && is_punct(t[j], '(')) {
          const std::size_t c2 = find_balanced(t, j, '(', ')');
          if (c2 == kNpos) return kNpos;
          j = c2 + 1;
        }
        continue;
      }
      return kNpos;  // some other identifier: a declaration or expression
    }
    if (d.kind != TokenKind::kPunct) return kNpos;
    const char p = d.text[0];
    if (p == '&') {
      ++j;
      continue;
    }
    if (p == '-' && j + 1 < t.size() && is_punct(t[j + 1], '>')) {
      // Trailing return type: scan to the body '{'; ';' or '=' means a
      // declaration.
      j += 2;
      while (j < t.size()) {
        if (is_punct(t[j], '(')) {
          const std::size_t c2 = find_balanced(t, j, '(', ')');
          if (c2 == kNpos) return kNpos;
          j = c2 + 1;
          continue;
        }
        if (is_punct(t[j], '{')) break;
        if (is_punct(t[j], ';') || is_punct(t[j], '=')) return kNpos;
        ++j;
      }
      continue;
    }
    if (p == ':' && !(j + 1 < t.size() && is_punct(t[j + 1], ':'))) {
      // Constructor initializer list — or a ternary/label false positive,
      // which aborts at the first top-level ';'.
      ++j;
      int depth = 0;
      while (j < t.size()) {
        const Token& e = t[j];
        if (e.kind == TokenKind::kPunct) {
          const char q = e.text[0];
          if (q == '(' || q == '[') {
            ++depth;
          } else if (q == ')' || q == ']') {
            --depth;
          } else if (q == '{' && depth == 0) {
            const Token& prev = t[j - 1];
            const bool member_init = prev.kind == TokenKind::kIdentifier ||
                                     is_punct(prev, '>');
            if (!member_init) return j;  // the body
            const std::size_t c2 = find_balanced(t, j, '{', '}');
            if (c2 == kNpos) return kNpos;
            j = c2;  // ++j below steps past
          } else if (q == ';' && depth == 0) {
            return kNpos;
          }
        }
        ++j;
      }
      return kNpos;
    }
    if (p == '{') return j;
    return kNpos;  // ';', ',', ')', '=' ... — call or declaration
  }
  return kNpos;
}

void collect_functions(const ScanResult& scan, FileIndex& out) {
  const std::vector<Token>& t = scan.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdentifier || keywords().count(t[i].text)) {
      continue;
    }
    if (!is_punct(t[i + 1], '(')) continue;
    const std::size_t close = find_balanced(t, i + 1, '(', ')');
    if (close == kNpos) continue;
    const std::size_t body = find_body_open(t, close);
    if (body == kNpos) continue;
    const std::size_t body_end = find_balanced(t, body, '{', '}');
    if (body_end == kNpos) continue;

    FunctionDef fn;
    fn.name = t[i].text;
    fn.display = fn.name;
    if (i >= 3 && is_punct(t[i - 1], ':') && is_punct(t[i - 2], ':') &&
        t[i - 3].kind == TokenKind::kIdentifier) {
      fn.display = t[i - 3].text + "::" + fn.name;
    } else if (i >= 1 && is_punct(t[i - 1], '~')) {
      fn.display = "~" + fn.name;
    }
    fn.line = t[i].line;
    fn.body_begin = body;
    fn.body_end = body_end;

    for (std::size_t k = i + 2; k < close; ++k) {
      if (t[k].kind == TokenKind::kIdentifier && t[k].text != "void") {
        fn.has_params = true;
        break;
      }
      if (t[k].kind == TokenKind::kNumber ||
          t[k].kind == TokenKind::kString || t[k].kind == TokenKind::kChar) {
        fn.has_params = true;
        break;
      }
    }

    std::unordered_set<std::string> seen_idents;
    for (std::size_t k = i; k <= body_end; ++k) {
      const Token& tok = t[k];
      if (tok.kind != TokenKind::kIdentifier) continue;
      const std::string& w = tok.text;
      if (w == "PMIOT_CHECK" || w == "PMIOT_ASSERT") fn.has_check = true;
      if (w == "new" &&
          !(k > i && t[k - 1].kind == TokenKind::kIdentifier &&
            t[k - 1].text == "operator")) {
        fn.allocs.push_back({w, tok.line});
      }
      if (keywords().count(w)) continue;
      if (k != i && k + 1 <= body_end && is_punct(t[k + 1], '(')) {
        fn.callees.push_back({w, tok.line});
      }
      if (sink_tokens().count(w)) fn.sinks.push_back({w, tok.line});
      if (alloc_tokens().count(w)) fn.allocs.push_back({w, tok.line});
      if (seen_idents.insert(w).second) fn.idents.push_back({w, tok.line});
    }
    out.functions.push_back(std::move(fn));
  }
}

/// Parses `pmiot: <kind>` markers out of one line's comment text. A
/// marker only counts when the kind word ends the comment or is followed
/// by a justification delimiter (dash, paren, colon, comma) — so prose
/// *mentioning* the grammar, e.g. "the `pmiot: sensitive` marker", does
/// not register.
void parse_annotations_on_line(const std::string& comment, std::size_t line,
                               FileIndex& out) {
  std::size_t p = 0;
  while ((p = comment.find("pmiot:", p)) != std::string::npos) {
    if (p > 0 && (is_ident_char(comment[p - 1]) || comment[p - 1] == '-')) {
      p += 6;
      continue;  // e.g. "mypmiot:" — not our marker
    }
    if (p + 6 < comment.size() && comment[p + 6] == ':') {
      p += 6;
      continue;  // "pmiot::..." — a qualified C++ name in prose
    }
    std::size_t q = p + 6;
    while (q < comment.size() && is_hspace(comment[q])) ++q;
    std::size_t r = q;
    while (r < comment.size() &&
           (is_ident_char(comment[r]) || comment[r] == '-')) {
      ++r;
    }
    const std::string word = comment.substr(q, r - q);
    if (word.empty()) {
      p = r + 1;
      continue;  // "pmiot:" with no annotation word is just prose
    }
    std::size_t s = r;
    while (s < comment.size() && is_hspace(comment[s])) ++s;
    const bool terminated =
        s >= comment.size() || comment[s] == '-' || comment[s] == '(' ||
        comment[s] == ';' || comment[s] == ',' ||
        static_cast<unsigned char>(comment[s]) == 0xE2;  // en/em dash
    if (terminated) {
      if (word == "sensitive" || word == "no-alloc" || word == "egress") {
        out.annotations.push_back({word, line, 0});
      } else {
        out.annotation_errors.push_back(
            {line, "unknown annotation 'pmiot: " + word +
                       "' (known: sensitive, no-alloc, egress)"});
      }
    }
    p = r;
  }
}

/// Finds the declared name a `pmiot: sensitive` marker attaches to on
/// `line`: the identifier after struct/class/enum, else the last
/// identifier before the declarator's terminating punctuation.
std::string sensitive_target_name(const ScanResult& scan, std::size_t line) {
  const std::vector<Token>& t = scan.tokens;
  std::string last_ident;
  bool after_tag = false;
  for (const Token& tok : t) {
    if (tok.line != line) {
      if (tok.line > line) break;
      continue;
    }
    if (tok.kind == TokenKind::kIdentifier) {
      if (tok.text == "struct" || tok.text == "class" || tok.text == "enum") {
        after_tag = true;
        continue;
      }
      if (after_tag) return tok.text;  // the tag name
      last_ident = tok.text;
      continue;
    }
    if (tok.kind == TokenKind::kPunct && !last_ident.empty()) {
      const char c = tok.text[0];
      if (c == ';' || c == '=' || c == '{' || c == '(') break;
    }
  }
  return last_ident;
}

void resolve_annotations(FileIndex& out) {
  const ScanResult& scan = out.scan;
  const std::size_t total_lines = scan.comments.size();
  for (Annotation& a : out.annotations) {
    std::size_t target = 0;
    for (std::size_t l = a.line; l <= total_lines; ++l) {
      if (scan.line_has_code(l)) {
        target = l;
        break;
      }
    }
    if (target == 0) {
      out.annotation_errors.push_back(
          {a.line, "'pmiot: " + a.kind + "' attaches to no code"});
      continue;
    }
    a.target_line = target;
    if (a.kind == "sensitive") {
      const std::string name = sensitive_target_name(scan, target);
      if (name.empty()) {
        out.annotation_errors.push_back(
            {a.line,
             "'pmiot: sensitive' found no declaration to mark on line " +
                 std::to_string(target)});
      } else {
        out.sensitive_names.push_back(name);
      }
      continue;
    }
    // no-alloc / egress: attach to the function whose name token sits on
    // the target line or within two lines below it (multi-line
    // signatures put the name under the return type).
    FunctionDef* best = nullptr;
    for (FunctionDef& fn : out.functions) {
      if (fn.line >= target && fn.line <= target + 2) {
        if (best == nullptr || fn.line < best->line) best = &fn;
      }
    }
    if (best == nullptr) {
      out.annotation_errors.push_back(
          {a.line, "'pmiot: " + a.kind +
                       "' found no function definition at line " +
                       std::to_string(target)});
      continue;
    }
    if (a.kind == "no-alloc") best->no_alloc = true;
    if (a.kind == "egress") best->egress = true;
  }
}

/// Collects quoted `#include "..."` edges from the original text, skipping
/// lines the preprocessor pass disabled.
void collect_includes(const std::string& content, FileIndex& out) {
  std::size_t pos = 0;
  while (pos < content.size()) {
    std::size_t end = content.find('\n', pos);
    if (end == std::string::npos) end = content.size();
    std::size_t first = pos;
    while (first < end && is_hspace(content[first])) ++first;
    if (first < end && content[first] == '#' &&
        first < out.scan.code.size() && out.scan.code[first] == '#') {
      std::size_t p = first + 1;
      while (p < end && is_hspace(content[p])) ++p;
      if (content.compare(p, 7, "include") == 0) {
        p += 7;
        while (p < end && is_hspace(content[p])) ++p;
        if (p < end && content[p] == '"') {
          const std::size_t close = content.find('"', p + 1);
          if (close != std::string::npos && close < end) {
            out.includes.push_back(content.substr(p + 1, close - p - 1));
          }
        }
      }
    }
    pos = end + 1;
  }
}

}  // namespace

FileIndex index_file(const std::string& path, const std::string& content) {
  FileIndex out;
  out.path = path;
  out.scan = scan_text(content);
  collect_functions(out.scan, out);
  for (std::size_t l = 1; l <= out.scan.comments.size(); ++l) {
    const std::string& comment = out.scan.comments[l - 1];
    if (!comment.empty()) parse_annotations_on_line(comment, l, out);
  }
  resolve_annotations(out);
  collect_includes(content, out);
  return out;
}

}  // namespace pmiot::lint
