// pmiot-lint symbol index: per-file function definitions, a name-based
// call graph, include edges, and `pmiot:` annotations, extracted from the
// token stream in one pass. The project-level rules (privacy-flow,
// check-coverage, no-alloc, the upgraded par-rng-seed) are resolved over
// the union of per-file indexes by the Analyzer in lint.cpp.
//
// The function detector is a token-shape heuristic, not a parser: it looks
// for `name ( ... )` followed by definition decorations (const, noexcept,
// ref-qualifiers, trailing return types, constructor initializer lists)
// and then a balanced `{ ... }` body. That finds free functions, methods,
// constructors/destructors, and functions nested in TEST bodies; it
// deliberately rejects calls, declarations, and control-flow keywords.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "pmiot_lint/token.h"

namespace pmiot::lint {

/// A callee reference (`name(` inside a function body) or a witness token
/// (sink/allocation/sensitive identifier) with its source line.
struct TokenRef {
  std::string name;
  std::size_t line = 0;
};

struct FunctionDef {
  std::string name;       ///< last identifier before '(' (method base name)
  std::string display;    ///< qualified spelling for messages, e.g. "Cp::append"
  std::size_t line = 0;   ///< line of the name token
  std::size_t body_begin = 0;  ///< token index of '{'
  std::size_t body_end = 0;    ///< token index of matching '}'
  bool has_params = false;     ///< parameter list is non-empty (and not `(void)`)
  bool has_check = false;      ///< PMIOT_CHECK / PMIOT_ASSERT in the body
  bool no_alloc = false;       ///< carries `pmiot: no-alloc`
  bool egress = false;         ///< carries `pmiot: egress`
  std::vector<TokenRef> callees;  ///< `ident(` sites in signature+body order
  std::vector<TokenRef> sinks;    ///< direct write-sink tokens
  std::vector<TokenRef> allocs;   ///< direct definite-allocation tokens
  std::vector<TokenRef> idents;   ///< every identifier in the span (dedup'd)
};

/// One parsed `// pmiot: <kind>` marker.
struct Annotation {
  std::string kind;             ///< "sensitive", "no-alloc", or "egress"
  std::size_t line = 0;         ///< line the marker appears on
  std::size_t target_line = 0;  ///< code line the marker attaches to
};

struct AnnotationError {
  std::size_t line = 0;
  std::string message;
};

struct FileIndex {
  std::string path;
  ScanResult scan;
  std::vector<FunctionDef> functions;
  std::vector<Annotation> annotations;
  std::vector<std::string> sensitive_names;  ///< declared sensitive here
  std::vector<AnnotationError> annotation_errors;  ///< bad-annotation facts
  std::vector<std::string> includes;  ///< quoted project includes, in order
};

/// Scans and indexes one translation unit. Never touches the filesystem.
FileIndex index_file(const std::string& path, const std::string& content);

}  // namespace pmiot::lint
