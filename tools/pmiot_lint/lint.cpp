#include "pmiot_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <functional>
#include <map>
#include <set>
#include <tuple>
#include <utility>

#include "pmiot_lint/index.h"
#include "pmiot_lint/token.h"

namespace pmiot::lint {
namespace {

bool is_ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

bool starts_with(const std::string& s, std::size_t pos, const char* prefix) {
  for (std::size_t i = 0; prefix[i] != '\0'; ++i) {
    if (pos + i >= s.size() || s[pos + i] != prefix[i]) return false;
  }
  return true;
}

/// Whole-word occurrence of `word` at `pos` in `text`.
bool word_at(const std::string& text, std::size_t pos,
             const std::string& word) {
  if (!starts_with(text, pos, word.c_str())) return false;
  if (pos > 0 && is_ident_char(text[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  return end >= text.size() || !is_ident_char(text[end]);
}

/// First whole-word occurrence of `word` at or after `from`, or npos.
std::size_t find_word(const std::string& text, const std::string& word,
                      std::size_t from = 0) {
  for (std::size_t pos = text.find(word, from); pos != std::string::npos;
       pos = text.find(word, pos + 1)) {
    if (word_at(text, pos, word)) return pos;
  }
  return std::string::npos;
}

std::size_t skip_spaces(const std::string& text, std::size_t pos) {
  while (pos < text.size() &&
         (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n')) {
    ++pos;
  }
  return pos;
}

/// Index of the character after the bracket that closes the one at `open`
/// (text[open] must be one of ( [ { <). Returns npos when unbalanced.
/// Brackets inside strings/comments are assumed already blanked.
std::size_t matching_close(const std::string& text, std::size_t open) {
  const char open_c = text[open];
  const char close_c = open_c == '(' ? ')'
                       : open_c == '[' ? ']'
                       : open_c == '{' ? '}'
                                       : '>';
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == open_c) ++depth;
    if (text[i] == close_c && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

/// 1-based line number of offset `pos` in `text`.
std::size_t line_of(const std::string& text, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() + static_cast<std::ptrdiff_t>(
                                              std::min(pos, text.size())),
                            '\n'));
}

std::string lowercase(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

struct RuleInfo {
  const char* name;
  const char* description;
};

constexpr RuleInfo kRules[] = {
    {"raw-rand",
     "rand()/srand()/std::random_device: ambient randomness breaks "
     "reproducibility; use a seeded pmiot::Rng"},
    {"wall-clock",
     "system_clock/time(nullptr)/gettimeofday/clock(): results must not "
     "depend on wall-clock time (src/obs/ exempt: obs timers are outside "
     "the determinism contract)"},
    {"src-timing",
     "steady_clock/high_resolution_clock under src/: timing belongs in "
     "bench/, library results must not branch on elapsed time (src/obs/ "
     "exempt)"},
    {"par-rng-seed",
     "RNG constructed inside a parallel_for lambda must take a per-shard "
     "seed (shard_seed, a precomputed seed value, or a helper call whose "
     "definition mentions a seed)"},
    {"nested-par",
     "parallel_for inside a parallel_for lambda runs inline; restructure "
     "so one level owns the parallelism"},
    {"unordered-iter",
     "iterating an unordered container yields nondeterministic order; sort "
     "first or justify with an allow"},
    {"atomic-float",
     "std::atomic<float/double> reductions commit to a scheduling-dependent "
     "addition order; accumulate per shard and combine in index order"},
    {"include-hygiene",
     "header uses a std:: symbol without including the standard header that "
     "provides it"},
    {"simd-guard",
     "raw SIMD intrinsics, intrinsics headers, or vector pragmas outside a "
     "PMIOT_SIMD-guarded preprocessor region; explicit vector code must stay "
     "behind the PMIOT_SIMD build option (src/simd/) so scalar builds stay "
     "the reference"},
    {"privacy-flow",
     "a src/ function handling sensitive data (pmiot: sensitive names, "
     "occupancy/payload built-ins) reaches a file/stdout write sink outside "
     "the sanctioned custody modules (src/defense/, src/campaign/); hand "
     "custody off or justify with an allow"},
    {"check-coverage",
     "a parser entry point (read_*/load_*/parse_* under src/ taking input) "
     "must PMIOT_CHECK-validate decoded lengths/offsets in its body or in a "
     "directly-called helper before indexing buffers"},
    {"no-alloc",
     "a function annotated `pmiot: no-alloc` reaches a definite heap "
     "allocation (new/make_unique/make_shared/malloc family) directly or "
     "through project callees; warm-arena container growth is policed by "
     "the runtime counting-operator-new probes instead"},
    {"bad-annotation",
     "a `pmiot:` annotation that is unknown, attaches to no "
     "declaration/function, or marks egress outside a sanctioned module "
     "(meta rule)"},
    {"stale-suppression",
     "an allow(...) directive that matched no violation (meta rule; not "
     "suppressible)"},
    {"unknown-rule",
     "allow(...) names a rule pmiot-lint does not know (meta rule)"},
};

bool is_known_rule(const std::string& name) {
  for (const auto& rule : kRules) {
    if (name == rule.name) return true;
  }
  return false;
}

/// One `allow(...)` grant: a rule name suppressing findings on `target_line`.
struct Allow {
  std::size_t directive_line = 0;  // where the comment sits (for staleness)
  std::size_t target_line = 0;     // line whose findings it suppresses
  std::string rule;
  bool used = false;
};

/// Parses `pmiot-lint: allow(...)` directives out of per-line comment text.
/// A directive on a line with code targets that line; a directive on a
/// comment-only line targets the next line that has code on it.
std::vector<Allow> collect_allows(const ScanResult& source,
                                  const std::string& path,
                                  std::vector<Diagnostic>& meta) {
  std::vector<Allow> allows;
  for (std::size_t li = 0; li < source.comments.size(); ++li) {
    const std::string& comment = source.comments[li];
    std::size_t pos = comment.find("pmiot-lint:");
    if (pos == std::string::npos) continue;
    pos = comment.find("allow", pos);
    if (pos == std::string::npos) continue;
    const std::size_t open = comment.find('(', pos);
    const std::size_t close = comment.find(')', open);
    if (open == std::string::npos || close == std::string::npos) {
      meta.push_back({path, li + 1, "unknown-rule",
                      "malformed pmiot-lint directive; expected "
                      "`pmiot-lint: allow(rule)`"});
      continue;
    }
    std::size_t target = li + 1;  // 1-based
    if (!source.line_has_code(target)) {
      ++target;
      while (target <= source.comments.size() &&
             !source.line_has_code(target)) {
        ++target;
      }
    }
    std::string name;
    for (std::size_t i = open + 1; i <= close; ++i) {
      const char c = comment[i];
      if (c == ',' || c == ')') {
        if (!name.empty()) {
          if (!is_known_rule(name)) {
            meta.push_back({path, li + 1, "unknown-rule",
                            "allow(" + name + ") names no pmiot-lint rule"});
          } else {
            allows.push_back({li + 1, target, name, false});
          }
          name.clear();
        }
      } else if (is_ident_char(c) || c == '-') {
        name += c;
      }
    }
  }
  return allows;
}

/// A half-open [begin, end) offset range of a parallel_for lambda body.
struct ParRegion {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Bodies of lambdas passed to parallel_for calls (the parallel regions the
/// par-rng-seed and nested-par rules police).
std::vector<ParRegion> find_par_regions(const std::string& code) {
  std::vector<ParRegion> regions;
  for (std::size_t pos = find_word(code, "parallel_for");
       pos != std::string::npos;
       pos = find_word(code, "parallel_for", pos + 1)) {
    const std::size_t open = skip_spaces(code, pos + 12);
    if (open >= code.size() || code[open] != '(') continue;  // declaration
    const std::size_t args_end = matching_close(code, open);
    if (args_end == std::string::npos) continue;
    // Find the lambda introducer among the arguments: a '[' directly after
    // '(' or ',' (a subscript's '[' follows an identifier or ')' instead).
    std::size_t lambda = std::string::npos;
    for (std::size_t i = open; i + 1 < args_end; ++i) {
      if (code[i] != '(' && code[i] != ',') continue;
      const std::size_t j = skip_spaces(code, i + 1);
      if (j < args_end && code[j] == '[') {
        lambda = j;
        break;
      }
    }
    if (lambda == std::string::npos) continue;  // fn pointer / declaration
    const std::size_t captures_end = matching_close(code, lambda);
    if (captures_end == std::string::npos) continue;
    const std::size_t body = code.find('{', captures_end);
    if (body == std::string::npos || body >= args_end) continue;
    const std::size_t body_end = matching_close(code, body);
    if (body_end == std::string::npos) continue;
    regions.push_back({body + 1, body_end - 1});
  }
  return regions;
}

bool in_regions(const std::vector<ParRegion>& regions, std::size_t pos) {
  for (const auto& region : regions) {
    if (pos >= region.begin && pos < region.end) return true;
  }
  return false;
}

void check_banned_calls(const std::string& path, const std::string& code,
                        bool in_src, bool in_obs,
                        std::vector<Diagnostic>& findings) {
  const auto flag = [&](std::size_t pos, const char* rule,
                        const std::string& what) {
    findings.push_back({path, line_of(code, pos), rule, what});
  };
  static const std::pair<const char*, const char*> kRandWords[] = {
      {"rand", "rand() draws from hidden global state"},
      {"srand", "srand() seeds hidden global state"},
      {"random_device", "std::random_device is nondeterministic by design"},
      {"random_shuffle", "std::random_shuffle uses unspecified randomness"},
  };
  for (const auto& [word, why] : kRandWords) {
    for (std::size_t pos = find_word(code, word); pos != std::string::npos;
         pos = find_word(code, word, pos + 1)) {
      // `rand`/`srand` only count as calls; the other names are banned
      // outright (even constructing std::random_device is a violation).
      if ((std::string(word) == "rand" || std::string(word) == "srand")) {
        const std::size_t next = skip_spaces(code, pos + std::string(word).size());
        if (next >= code.size() || code[next] != '(') continue;
      }
      flag(pos, "raw-rand",
           std::string(why) + "; use a seeded pmiot::Rng instead");
    }
  }
  // src/obs/ is the one place in the tree allowed to read clocks: obs
  // timers report wall durations that are explicitly excluded from the
  // determinism contract. Everywhere else both rules stay armed.
  if (in_obs) return;
  static const char* kWallClockWords[] = {"system_clock", "gettimeofday",
                                          "clock_gettime"};
  for (const char* word : kWallClockWords) {
    for (std::size_t pos = find_word(code, word); pos != std::string::npos;
         pos = find_word(code, word, pos + 1)) {
      flag(pos, "wall-clock",
           std::string(word) + " reads the wall clock; results must be "
                               "reproducible across runs");
    }
  }
  // `time(...)` with no argument or a null-ish argument, and argless
  // `clock()`. `timestamp()`-style identifiers don't match (whole word).
  for (const char* word : {"time", "clock"}) {
    for (std::size_t pos = find_word(code, word); pos != std::string::npos;
         pos = find_word(code, word, pos + 1)) {
      const std::size_t open = pos + (word[0] == 't' ? 4 : 5);
      if (open >= code.size() || code[open] != '(') continue;
      const std::size_t close = matching_close(code, open);
      if (close == std::string::npos) continue;
      std::string args = code.substr(open + 1, close - open - 2);
      args.erase(std::remove_if(args.begin(), args.end(),
                                [](char c) { return c == ' ' || c == '\t'; }),
                 args.end());
      if (args.empty() || args == "nullptr" || args == "NULL" || args == "0") {
        flag(pos, "wall-clock",
             std::string(word) + "(" + args + ") reads the wall clock");
      }
    }
  }
  if (in_src) {
    for (const char* word : {"steady_clock", "high_resolution_clock"}) {
      for (std::size_t pos = find_word(code, word); pos != std::string::npos;
           pos = find_word(code, word, pos + 1)) {
        flag(pos, "src-timing",
             std::string(word) + " in library code: move timing to bench/; "
                                 "results must not depend on elapsed time");
      }
    }
  }
}

/// Answers "does a project function with this name mention a seed?" — the
/// one-level helper hop the upgraded par-rng-seed rule follows.
using SeedHelperLookup = std::function<bool(const std::string&)>;

void check_par_regions(const std::string& path, const std::string& code,
                       const SeedHelperLookup& helper_mentions_seed,
                       std::vector<Diagnostic>& findings) {
  const std::vector<ParRegion> regions = find_par_regions(code);
  if (regions.empty()) return;
  // Nested parallel_for: any parallel_for token inside a region.
  for (std::size_t pos = find_word(code, "parallel_for");
       pos != std::string::npos;
       pos = find_word(code, "parallel_for", pos + 1)) {
    if (in_regions(regions, pos)) {
      findings.push_back(
          {path, line_of(code, pos), "nested-par",
           "parallel_for inside a parallel_for lambda runs inline on the "
           "calling thread; hoist the parallelism to one level"});
    }
  }
  // RNG construction inside a region must mention a seed.
  static const char* kEngines[] = {"Rng", "mt19937", "mt19937_64",
                                   "minstd_rand", "minstd_rand0",
                                   "default_random_engine"};
  for (const char* engine : kEngines) {
    for (std::size_t pos = find_word(code, engine); pos != std::string::npos;
         pos = find_word(code, engine, pos + 1)) {
      if (!in_regions(regions, pos)) continue;
      // Construction shapes: `Rng(args)`, `Rng{args}`, `Rng name(args)`,
      // `Rng name{args}`. A reference/pointer parameter or member access
      // is not a construction.
      std::size_t cursor = skip_spaces(code, pos + std::string(engine).size());
      if (cursor < code.size() && is_ident_char(code[cursor])) {
        while (cursor < code.size() && is_ident_char(code[cursor])) ++cursor;
        cursor = skip_spaces(code, cursor);
      }
      if (cursor >= code.size() || (code[cursor] != '(' && code[cursor] != '{')) {
        continue;
      }
      const std::size_t close = matching_close(code, cursor);
      if (close == std::string::npos) continue;
      const std::string args = code.substr(cursor + 1, close - cursor - 2);
      // Accept any seed-bearing argument: shard_seed(...), seeds[i],
      // base_seed + ... — an identifier whose name mentions "seed" — or a
      // call to a helper function whose own definition mentions a seed
      // (one level deep, resolved over the project index).
      bool seeded = false;
      for (std::size_t i = 0; i < args.size() && !seeded; ++i) {
        const bool word_start = i == 0 || !is_ident_char(args[i - 1]);
        if (!word_start || !is_ident_char(args[i])) continue;
        std::size_t j = i;
        std::string ident;
        while (j < args.size() && is_ident_char(args[j])) ident += args[j++];
        if (lowercase(ident).find("seed") != std::string::npos) {
          seeded = true;
        } else if (helper_mentions_seed) {
          const std::size_t k = skip_spaces(args, j);
          if (k < args.size() && args[k] == '(' &&
              helper_mentions_seed(ident)) {
            seeded = true;
          }
        }
        i = j;
      }
      if (!seeded) {
        findings.push_back(
            {path, line_of(code, pos), "par-rng-seed",
             std::string(engine) +
                 " constructed inside a parallel_for lambda without a "
                 "per-shard seed; derive it from shard_seed(base, i) or a "
                 "precomputed seeds[i]"});
      }
    }
  }
}

void check_unordered_iteration(const std::string& path,
                               const std::string& code,
                               std::vector<Diagnostic>& findings) {
  // Collect names declared with an unordered container type in this file.
  std::set<std::string> names;
  for (const char* container : {"unordered_map", "unordered_set",
                                "unordered_multimap", "unordered_multiset"}) {
    for (std::size_t pos = find_word(code, container);
         pos != std::string::npos;
         pos = find_word(code, container, pos + 1)) {
      const std::size_t open = pos + std::string(container).size();
      if (open >= code.size() || code[open] != '<') continue;
      std::size_t after = matching_close(code, open);
      if (after == std::string::npos) continue;
      after = skip_spaces(code, after);
      // `&`/`*` still declare a name whose iteration is unordered.
      while (after < code.size() && (code[after] == '&' || code[after] == '*')) {
        after = skip_spaces(code, after + 1);
      }
      std::string name;
      while (after < code.size() && is_ident_char(code[after])) {
        name += code[after++];
      }
      if (!name.empty()) names.insert(name);
    }
  }
  if (names.empty()) return;
  // Range-for over a declared name (possibly member-qualified), or explicit
  // begin() iteration on one.
  for (std::size_t pos = find_word(code, "for"); pos != std::string::npos;
       pos = find_word(code, "for", pos + 1)) {
    const std::size_t open = skip_spaces(code, pos + 3);
    if (open >= code.size() || code[open] != '(') continue;
    const std::size_t close = matching_close(code, open);
    if (close == std::string::npos) continue;
    const std::string head = code.substr(open + 1, close - open - 2);
    const std::size_t colon = head.find(':');
    if (colon == std::string::npos || (colon + 1 < head.size() && head[colon + 1] == ':')) {
      continue;  // not a range-for (plain for, or :: qualifier first)
    }
    std::string range = head.substr(colon + 1);
    // Last identifier component of the range expression.
    std::string ident;
    for (char c : range) {
      if (is_ident_char(c)) {
        ident += c;
      } else if (c != ' ' && c != '\t' && c != '\n') {
        if (c == '.' || (c == '>' && !ident.empty())) ident.clear();
      }
    }
    if (names.count(ident) != 0) {
      findings.push_back(
          {path, line_of(code, pos), "unordered-iter",
           "range-for over unordered container `" + ident +
               "`: traversal order is nondeterministic; iterate a sorted "
               "copy of the keys (or justify with an allow)"});
    }
  }
  for (const std::string& name : names) {
    for (const char* method : {".begin", ".cbegin"}) {
      const std::string pattern = name + method;
      for (std::size_t pos = code.find(pattern); pos != std::string::npos;
           pos = code.find(pattern, pos + 1)) {
        if (pos > 0 && is_ident_char(code[pos - 1])) continue;
        findings.push_back(
            {path, line_of(code, pos), "unordered-iter",
             "iterator walk over unordered container `" + name +
                 "`: traversal order is nondeterministic; sort keys first "
                 "(or justify with an allow)"});
      }
    }
  }
}

void check_atomic_float(const std::string& path, const std::string& code,
                        std::vector<Diagnostic>& findings) {
  for (std::size_t pos = find_word(code, "atomic"); pos != std::string::npos;
       pos = find_word(code, "atomic", pos + 1)) {
    const std::size_t open = pos + 6;
    if (open >= code.size() || code[open] != '<') continue;
    const std::size_t close = matching_close(code, open);
    if (close == std::string::npos) continue;
    const std::string type = code.substr(open + 1, close - open - 2);
    if (find_word(type, "float") != std::string::npos ||
        find_word(type, "double") != std::string::npos) {
      findings.push_back(
          {path, line_of(code, pos), "atomic-float",
           "std::atomic<" + std::string(type) +
               "> reduction order depends on thread scheduling; accumulate "
               "into per-shard slots and combine in index order"});
    }
  }
}

/// Flags explicit vector code outside PMIOT_SIMD-guarded preprocessor
/// regions: x86 intrinsic identifiers (`_mm*`), vector register types
/// (`__m128/__m256/__m512*`), includes of `*intrin.h`, and vectorization
/// pragmas (`omp simd`, `ivdep`, `vectorize`). A region counts as guarded
/// when ANY enclosing conditional's text mentions PMIOT_SIMD (this covers
/// both `#if defined(PMIOT_SIMD) && ...` and derived symbols like
/// `PMIOT_SIMD_AVX2`); the `#else` branch of such a conditional is the
/// scalar side and is NOT guarded (inverted for `#ifndef`).
void check_simd_guard(const std::string& path, const std::string& code,
                      std::vector<Diagnostic>& findings) {
  struct Frame {
    bool mentions = false;  // condition text mentions PMIOT_SIMD
    bool negated = false;   // #ifndef: the else branch is the guarded one
    bool in_else = false;
    bool guarded() const { return mentions && (negated ? in_else : !in_else); }
  };
  std::vector<Frame> stack;
  const auto any_guarded = [&stack] {
    for (const auto& frame : stack) {
      if (frame.guarded()) return true;
    }
    return false;
  };
  const auto flag = [&](std::size_t pos, const std::string& what) {
    findings.push_back({path, line_of(code, pos), "simd-guard",
                        what + " outside a PMIOT_SIMD-guarded region; keep "
                               "explicit vector code behind the PMIOT_SIMD "
                               "option with a scalar fallback (see src/simd/)"});
  };
  std::size_t pos = 0;
  while (pos < code.size()) {
    std::size_t end = code.find('\n', pos);
    if (end == std::string::npos) end = code.size();
    // Fold backslash continuations into one logical line so a wrapped
    // condition is inspected whole.
    while (end > pos && end < code.size() && code[end - 1] == '\\') {
      std::size_t next = code.find('\n', end + 1);
      if (next == std::string::npos) next = code.size();
      end = next;
    }
    const std::string line = code.substr(pos, end - pos);
    std::size_t first = 0;
    while (first < line.size() &&
           (line[first] == ' ' || line[first] == '\t')) {
      ++first;
    }
    if (first < line.size() && line[first] == '#') {
      std::size_t d = first + 1;
      while (d < line.size() && (line[d] == ' ' || line[d] == '\t')) ++d;
      std::size_t d_end = d;
      while (d_end < line.size() && is_ident_char(line[d_end])) ++d_end;
      const std::string directive = line.substr(d, d_end - d);
      const std::string rest = line.substr(d_end);
      const bool mentions = rest.find("PMIOT_SIMD") != std::string::npos;
      if (directive == "if" || directive == "ifdef") {
        stack.push_back({mentions, false, false});
      } else if (directive == "ifndef") {
        stack.push_back({mentions, true, false});
      } else if (directive == "elif") {
        if (!stack.empty()) stack.back() = {mentions, false, false};
      } else if (directive == "else") {
        if (!stack.empty()) stack.back().in_else = true;
      } else if (directive == "endif") {
        if (!stack.empty()) stack.pop_back();
      } else if (directive == "include" && !any_guarded() &&
                 rest.find("intrin.h") != std::string::npos) {
        flag(pos + first, "intrinsics header include");
      } else if (directive == "pragma" && !any_guarded() &&
                 (find_word(rest, "simd") != std::string::npos ||
                  find_word(rest, "ivdep") != std::string::npos ||
                  rest.find("vectorize") != std::string::npos)) {
        flag(pos + first, "vectorization pragma");
      }
      pos = end + 1;
      continue;
    }
    if (!any_guarded()) {
      for (std::size_t i = 0; i < line.size(); ++i) {
        if (!is_ident_char(line[i])) continue;
        std::size_t j = i;
        while (j < line.size() && is_ident_char(line[j])) ++j;
        const bool word_start = i == 0 || !is_ident_char(line[i - 1]);
        if (word_start) {
          const std::string ident = line.substr(i, j - i);
          if (ident.rfind("_mm", 0) == 0) {
            flag(pos + i, "x86 SIMD intrinsic `" + ident + "`");
          } else if (ident.rfind("__m128", 0) == 0 ||
                     ident.rfind("__m256", 0) == 0 ||
                     ident.rfind("__m512", 0) == 0) {
            flag(pos + i, "SIMD register type `" + ident + "`");
          }
        }
        i = j;
      }
    }
    pos = end + 1;
  }
}

/// std:: symbol -> standard headers that satisfy it. A header may use the
/// symbol only if it directly includes one of them.
struct SymbolRequirement {
  const char* symbol;
  std::vector<const char*> headers;
};

const std::vector<SymbolRequirement>& symbol_requirements() {
  // Note: std::size_t is formally from <cstddef> and friends, but both
  // mainstream standard libraries also define it in <cstdint>; the repo
  // leans on that, so <cstdint> is accepted.
  static const std::vector<SymbolRequirement> kTable = {
      {"vector", {"vector"}},
      {"string", {"string"}},
      {"string_view", {"string_view"}},
      {"unordered_map", {"unordered_map"}},
      {"unordered_set", {"unordered_set"}},
      {"optional", {"optional"}},
      {"function", {"functional"}},
      {"array", {"array"}},
      {"pair", {"utility"}},
      {"tuple", {"tuple"}},
      {"unique_ptr", {"memory"}},
      {"shared_ptr", {"memory"}},
      {"make_unique", {"memory"}},
      {"make_shared", {"memory"}},
      {"span", {"span"}},
      {"size_t", {"cstddef", "cstdint", "cstdio", "cstring", "cstdlib"}},
      {"ptrdiff_t", {"cstddef", "cstdint"}},
      {"uint8_t", {"cstdint"}},
      {"uint16_t", {"cstdint"}},
      {"uint32_t", {"cstdint"}},
      {"uint64_t", {"cstdint"}},
      {"int8_t", {"cstdint"}},
      {"int16_t", {"cstdint"}},
      {"int32_t", {"cstdint"}},
      {"int64_t", {"cstdint"}},
      {"atomic", {"atomic"}},
      {"mutex", {"mutex"}},
      {"lock_guard", {"mutex"}},
      {"unique_lock", {"mutex"}},
      {"condition_variable", {"condition_variable"}},
      {"thread", {"thread"}},
      {"ostream", {"ostream", "iostream", "iosfwd", "sstream", "fstream"}},
      {"istream", {"istream", "iostream", "iosfwd", "sstream", "fstream"}},
      {"ofstream", {"fstream"}},
      {"ifstream", {"fstream"}},
      {"ostringstream", {"sstream"}},
      {"istringstream", {"sstream"}},
      {"runtime_error", {"stdexcept"}},
      {"logic_error", {"stdexcept"}},
      {"invalid_argument", {"stdexcept"}},
      {"out_of_range", {"stdexcept"}},
      {"exception", {"exception", "stdexcept"}},
      {"move", {"utility"}},
      {"forward", {"utility"}},
      {"swap", {"utility", "algorithm"}},
      {"min", {"algorithm"}},
      {"max", {"algorithm"}},
      {"sort", {"algorithm"}},
      {"stable_sort", {"algorithm"}},
  };
  return kTable;
}

void check_include_hygiene(const std::string& path, const std::string& code,
                           std::vector<Diagnostic>& findings) {
  // Direct includes of this header (angle or quoted; quoted project headers
  // don't satisfy std symbols, so only the <...> set matters here).
  std::set<std::string> includes;
  std::size_t pos = 0;
  while ((pos = code.find("#include", pos)) != std::string::npos) {
    std::size_t i = skip_spaces(code, pos + 8);
    if (i < code.size() && code[i] == '<') {
      const std::size_t end = code.find('>', i);
      if (end != std::string::npos) {
        includes.insert(code.substr(i + 1, end - i - 1));
      }
    }
    ++pos;
  }
  // First use of each symbol spelled `std::symbol`.
  std::set<std::string> reported;
  for (const auto& requirement : symbol_requirements()) {
    if (reported.count(requirement.symbol) != 0) continue;
    bool satisfied = false;
    for (const char* header : requirement.headers) {
      if (includes.count(header) != 0) {
        satisfied = true;
        break;
      }
    }
    if (satisfied) continue;
    const std::string qualified = std::string("std::") + requirement.symbol;
    for (std::size_t at = code.find(qualified); at != std::string::npos;
         at = code.find(qualified, at + 1)) {
      const std::size_t sym = at + 5;
      if (!word_at(code, sym, requirement.symbol)) continue;
      if (at > 0 && is_ident_char(code[at - 1])) continue;
      std::string suggestion = requirement.headers.front();
      findings.push_back(
          {path, line_of(code, at), "include-hygiene",
           "header uses std::" + std::string(requirement.symbol) +
               " but does not include <" + suggestion +
               "> (self-sufficiency: no leaning on transitive includes)"});
      reported.insert(requirement.symbol);
      break;  // one finding per symbol per header
    }
  }
}

// ---------------------------------------------------------------------------
// Project rules: resolved over the union of per-file symbol indexes.

bool in_sanctioned_module(const std::string& path) {
  return path.rfind("src/defense/", 0) == 0 ||
         path.rfind("src/campaign/", 0) == 0;
}

/// The cross-TU view: every function in the project, with its defining
/// file, plus name lookup and the sensitive-name set.
struct ProjectIndex {
  std::vector<const FunctionDef*> fns;
  std::vector<const FileIndex*> fn_file;  // parallel to fns
  std::map<std::string, std::vector<std::size_t>> by_name;
  std::set<std::string> sensitive_names;

  bool is_sensitive_ident(const std::string& w) const {
    if (sensitive_names.count(w) != 0) return true;
    if (w == "payload" || w == "payloads") return true;  // packet contents
    return lowercase(w).find("occupancy") != std::string::npos;
  }
};

ProjectIndex build_project_index(const std::vector<FileIndex>& files) {
  ProjectIndex project;
  for (const FileIndex& file : files) {
    for (const FunctionDef& fn : file.functions) {
      project.by_name[fn.name].push_back(project.fns.size());
      project.fns.push_back(&fn);
      project.fn_file.push_back(&file);
    }
    for (const std::string& name : file.sensitive_names) {
      project.sensitive_names.insert(name);
    }
  }
  return project;
}

/// Memoized transitive reachability of "interesting" direct facts
/// (write sinks or definite allocations) over the name-based call graph.
/// `barrier(g)` stops propagation through a callee (custody handoff for
/// privacy-flow; independently-policed functions for no-alloc).
class ReachSolver {
 public:
  struct Witness {
    std::size_t line = 0;  // in the *querying* function's file
    std::string what;      // human description of the path
  };

  ReachSolver(const ProjectIndex& project,
              std::function<const std::vector<TokenRef>&(const FunctionDef&)>
                  direct_facts,
              std::function<bool(std::size_t)> barrier)
      : project_(project),
        direct_facts_(std::move(direct_facts)),
        barrier_(std::move(barrier)),
        state_(project.fns.size(), 0),
        reaches_(project.fns.size(), false),
        witness_(project.fns.size()) {}

  bool reaches(std::size_t id) {
    if (state_[id] == 1) return false;  // cycle guard: cut, don't memoize
    if (state_[id] == 2) return reaches_[id];
    state_[id] = 1;
    const FunctionDef& fn = *project_.fns[id];
    bool found = false;
    Witness w;
    const std::vector<TokenRef>& direct = direct_facts_(fn);
    if (!direct.empty()) {
      found = true;
      w = {direct.front().line, "`" + direct.front().name + "`"};
    } else {
      for (const TokenRef& call : fn.callees) {
        const auto it = project_.by_name.find(call.name);
        if (it == project_.by_name.end()) continue;
        for (const std::size_t g : it->second) {
          if (g == id || barrier_(g)) continue;
          if (reaches(g)) {
            found = true;
            w = {call.line,
                 "call to `" + call.name + "` (which reaches " +
                     witness_[g].what + ")"};
            break;
          }
        }
        if (found) break;
      }
    }
    state_[id] = 2;
    reaches_[id] = found;
    witness_[id] = std::move(w);
    return found;
  }

  const Witness& witness(std::size_t id) const { return witness_[id]; }

 private:
  const ProjectIndex& project_;
  std::function<const std::vector<TokenRef>&(const FunctionDef&)> direct_facts_;
  std::function<bool(std::size_t)> barrier_;
  std::vector<int> state_;  // 0 unvisited, 1 visiting, 2 done
  std::vector<bool> reaches_;
  std::vector<Witness> witness_;
};

/// privacy-flow: a src/ function that mentions a sensitive name and
/// reaches a write sink outside the sanctioned custody modules. Inside a
/// sanctioned module, a sensitive function with a *direct* sink must carry
/// `pmiot: egress` so the audit set stays explicit.
void check_privacy_flow(const ProjectIndex& project,
                        std::map<const FileIndex*, std::vector<Diagnostic>>&
                            per_file) {
  ReachSolver sinks(
      project,
      [](const FunctionDef& fn) -> const std::vector<TokenRef>& {
        return fn.sinks;
      },
      [&project](std::size_t g) {
        // Custody handoff: calls into sanctioned modules or through an
        // egress-annotated function do not propagate taint to callers.
        return project.fns[g]->egress ||
               in_sanctioned_module(project.fn_file[g]->path);
      });
  for (std::size_t id = 0; id < project.fns.size(); ++id) {
    const FunctionDef& fn = *project.fns[id];
    const FileIndex& file = *project.fn_file[id];
    const bool sanctioned = in_sanctioned_module(file.path);
    if (fn.egress && !sanctioned) {
      per_file[&file].push_back(
          {file.path, fn.line, "bad-annotation",
           "'pmiot: egress' on `" + fn.display + "` outside the sanctioned "
           "custody modules (src/defense/, src/campaign/); egress points "
           "must live behind a sanctioned path"});
    }
    if (file.path.rfind("src/", 0) != 0) continue;
    std::string sensitive_witness;
    std::size_t sensitive_line = 0;
    for (const TokenRef& ident : fn.idents) {
      if (project.is_sensitive_ident(ident.name)) {
        sensitive_witness = ident.name;
        sensitive_line = ident.line;
        break;
      }
    }
    if (sensitive_witness.empty()) continue;
    if (sanctioned) {
      if (!fn.sinks.empty() && !fn.egress) {
        per_file[&file].push_back(
            {file.path, fn.sinks.front().line, "privacy-flow",
             "`" + fn.display + "` in a sanctioned module handles sensitive "
             "data (`" + sensitive_witness + "`) and writes directly (`" +
             fn.sinks.front().name + "`); mark the custody boundary with "
             "`pmiot: egress` so the audit set stays explicit"});
      }
      continue;
    }
    if (fn.egress) continue;  // already reported as bad-annotation above
    if (!sinks.reaches(id)) continue;
    const ReachSolver::Witness& w = sinks.witness(id);
    per_file[&file].push_back(
        {file.path, w.line, "privacy-flow",
         "`" + fn.display + "` handles sensitive data (`" +
             sensitive_witness + "` at line " +
             std::to_string(sensitive_line) + ") and reaches a write sink: " +
             w.what + "; route the release through src/defense or "
             "src/campaign, or justify with allow(privacy-flow)"});
  }
}

/// check-coverage: read_*/load_*/parse_* entry points under src/ must
/// carry a PMIOT_CHECK in their body or in a directly-called helper.
void check_check_coverage(const ProjectIndex& project,
                          std::map<const FileIndex*, std::vector<Diagnostic>>&
                              per_file) {
  for (std::size_t id = 0; id < project.fns.size(); ++id) {
    const FunctionDef& fn = *project.fns[id];
    const FileIndex& file = *project.fn_file[id];
    if (file.path.rfind("src/", 0) != 0) continue;
    const bool parser_name = fn.name.rfind("read_", 0) == 0 ||
                             fn.name.rfind("load_", 0) == 0 ||
                             fn.name.rfind("parse_", 0) == 0;
    if (!parser_name || !fn.has_params) continue;
    bool covered = fn.has_check;
    for (const TokenRef& call : fn.callees) {
      if (covered) break;
      const auto it = project.by_name.find(call.name);
      if (it == project.by_name.end()) continue;
      for (const std::size_t g : it->second) {
        if (project.fns[g]->has_check) {
          covered = true;
          break;
        }
      }
    }
    if (covered) continue;
    per_file[&file].push_back(
        {file.path, fn.line, "check-coverage",
         "parser entry point `" + fn.display + "` never "
         "PMIOT_CHECK-validates its input (no check in its body or in a "
         "directly-called helper); validate decoded lengths/offsets before "
         "indexing buffers"});
  }
}

/// no-alloc: annotated functions must not reach a definite allocation.
void check_no_alloc(const ProjectIndex& project,
                    std::map<const FileIndex*, std::vector<Diagnostic>>&
                        per_file) {
  ReachSolver allocs(
      project,
      [](const FunctionDef& fn) -> const std::vector<TokenRef>& {
        return fn.allocs;
      },
      [&project](std::size_t g) {
        // An annotated callee is policed by its own annotation; do not
        // double-report through it.
        return project.fns[g]->no_alloc;
      });
  for (std::size_t id = 0; id < project.fns.size(); ++id) {
    const FunctionDef& fn = *project.fns[id];
    if (!fn.no_alloc) continue;
    const FileIndex& file = *project.fn_file[id];
    // Query direct facts and the graph; the annotated function itself is
    // not its own barrier.
    if (!fn.allocs.empty()) {
      per_file[&file].push_back(
          {file.path, fn.allocs.front().line, "no-alloc",
           "`" + fn.display + "` is annotated `pmiot: no-alloc` but "
           "allocates directly (`" + fn.allocs.front().name + "`); hoist "
           "the allocation to setup or drop the annotation"});
      continue;
    }
    if (allocs.reaches(id)) {
      const ReachSolver::Witness& w = allocs.witness(id);
      per_file[&file].push_back(
          {file.path, w.line, "no-alloc",
           "`" + fn.display + "` is annotated `pmiot: no-alloc` but reaches "
           "a heap allocation: " + w.what + "; hoist the allocation to "
           "setup or drop the annotation"});
    }
  }
}

}  // namespace

std::string to_string(const Diagnostic& diagnostic) {
  return diagnostic.file + ":" + std::to_string(diagnostic.line) +
         ": error: [" + diagnostic.rule + "] " + diagnostic.message;
}

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const auto& rule : kRules) names.emplace_back(rule.name);
    return names;
  }();
  return kNames;
}

std::string describe_rule(const std::string& rule) {
  for (const auto& info : kRules) {
    if (rule == info.name) return std::string(info.description);
  }
  return "";
}

void Analyzer::add_file(const std::string& path, const std::string& content) {
  files_.emplace_back(path, content);
}

std::vector<Diagnostic> Analyzer::run() {
  // One pass: scan + index every translation unit.
  std::vector<FileIndex> files;
  files.reserve(files_.size());
  for (const auto& [path, content] : files_) {
    files.push_back(index_file(path, content));
  }
  const ProjectIndex project = build_project_index(files);

  const SeedHelperLookup helper_mentions_seed =
      [&project](const std::string& name) {
        const auto it = project.by_name.find(name);
        if (it == project.by_name.end()) return false;
        for (const std::size_t g : it->second) {
          for (const TokenRef& ident : project.fns[g]->idents) {
            if (lowercase(ident.name).find("seed") != std::string::npos) {
              return true;
            }
          }
        }
        return false;
      };

  // Project rules, bucketed per file so suppressions apply uniformly.
  std::map<const FileIndex*, std::vector<Diagnostic>> project_findings;
  check_privacy_flow(project, project_findings);
  check_check_coverage(project, project_findings);
  check_no_alloc(project, project_findings);

  std::vector<Diagnostic> all;
  for (const FileIndex& file : files) {
    const std::string& path = file.path;
    const std::string& code = file.scan.code;
    const bool in_src = path.rfind("src/", 0) == 0;
    const bool in_obs = path.rfind("src/obs/", 0) == 0;
    const bool is_header =
        path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0;

    std::vector<Diagnostic> meta;
    std::vector<Allow> allows = collect_allows(file.scan, path, meta);

    std::vector<Diagnostic> findings;
    check_banned_calls(path, code, in_src, in_obs, findings);
    check_par_regions(path, code, helper_mentions_seed, findings);
    check_unordered_iteration(path, code, findings);
    check_atomic_float(path, code, findings);
    check_simd_guard(path, code, findings);
    if (is_header) check_include_hygiene(path, code, findings);
    const auto bucket = project_findings.find(&file);
    if (bucket != project_findings.end()) {
      for (const Diagnostic& d : bucket->second) findings.push_back(d);
    }
    for (const AnnotationError& err : file.annotation_errors) {
      findings.push_back({path, err.line, "bad-annotation", err.message});
    }

    // Apply suppressions; every grant must earn its keep.
    std::vector<Diagnostic> kept;
    for (const auto& finding : findings) {
      bool suppressed = false;
      for (auto& allow : allows) {
        if (allow.target_line == finding.line && allow.rule == finding.rule) {
          allow.used = true;
          suppressed = true;
        }
      }
      if (!suppressed) kept.push_back(finding);
    }
    for (const auto& allow : allows) {
      if (!allow.used) {
        kept.push_back({path, allow.directive_line, "stale-suppression",
                        "allow(" + allow.rule + ") matched no " + allow.rule +
                            " violation on line " +
                            std::to_string(allow.target_line) +
                            "; remove the suppression"});
      }
    }
    for (auto& diagnostic : meta) kept.push_back(std::move(diagnostic));
    for (auto& diagnostic : kept) all.push_back(std::move(diagnostic));
  }

  std::sort(all.begin(), all.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return all;
}

std::vector<Diagnostic> lint_source(const std::string& path,
                                    const std::string& content) {
  Analyzer analyzer;
  analyzer.add_file(path, content);
  return analyzer.run();
}

}  // namespace pmiot::lint
