// pmiot-lint: a determinism & concurrency linter for the pmiot tree.
//
// The repo's bit-reproducibility contract (results identical at any
// PMIOT_THREADS, across runs, across machines) rests on a handful of coding
// invariants that no compiler flag enforces: no ambient randomness, no wall
// clocks in library code, shard-derived RNG seeds inside parallel regions,
// no iteration over hash containers into ordered output. This linter checks
// them mechanically over `src/ bench/ tests/ tools/` and runs as a ctest, so
// a violation fails the build instead of silently de-reproducing a paper
// figure.
//
// Rules (scope in parentheses; `--list-rules` prints the same table):
//   raw-rand        (all)   rand()/srand()/std::random_device — use a
//                           seeded pmiot::Rng.
//   wall-clock      (all)   system_clock / time(nullptr) / gettimeofday /
//                           clock(): results must not depend on wall time.
//                           Carve-out: src/obs/ may read clocks — obs timer
//                           spans are excluded from the determinism
//                           contract by design.
//   src-timing      (src)   steady_clock & friends in library code — timing
//                           belongs in bench/, not in results. Same
//                           src/obs/ carve-out as wall-clock.
//   par-rng-seed    (all)   RNG constructed inside a parallel_for lambda
//                           must be seeded from shard_seed (or an explicit
//                           per-shard seed value mentioning "seed").
//   nested-par      (all)   parallel_for inside a parallel_for lambda: the
//                           inner call runs inline, which is almost never
//                           what the author intended for throughput.
//   unordered-iter  (all)   iteration over an unordered_map/unordered_set:
//                           the traversal order is nondeterministic, so any
//                           output or accumulation it feeds must be ordered
//                           first (or the site justified with an allow).
//   atomic-float    (all)   std::atomic<float/double>: atomic FP reduction
//                           commits to an addition order that depends on
//                           thread scheduling.
//   include-hygiene (headers) a header naming a std:: symbol must include
//                           the standard header that provides it, not lean
//                           on a transitive include.
//
// Suppressions: a `pmiot-lint: allow(...)` comment naming one or more rules
// on the offending line, or alone on the line above it. Every grant must
// match a violation — a stale suppression is itself reported
// (`stale-suppression`), so suppressions cannot outlive the code they
// excused.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pmiot::lint {

/// One finding, anchored to a 1-based line of `file`.
struct Diagnostic {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;

  bool operator==(const Diagnostic&) const = default;
};

/// Formats as `file:line: error: [rule] message` (the common compiler
/// diagnostic shape, so editors and CI annotations pick it up).
std::string to_string(const Diagnostic& diagnostic);

/// Rule names `allow(...)` accepts, in documentation order.
const std::vector<std::string>& rule_names();

/// One line of the `--list-rules` table: "name  description".
std::string describe_rule(const std::string& rule);

/// Lints one translation unit. `path` is the repo-relative path ("src/..."),
/// used both for diagnostics and for scoping rules (src-timing only fires
/// under src/; include-hygiene only on *.h). Diagnostics come back in line
/// order. Never touches the filesystem — callers feed `content` — so tests
/// lint embedded fixture strings directly.
std::vector<Diagnostic> lint_source(const std::string& path,
                                    const std::string& content);

}  // namespace pmiot::lint
