// pmiot-lint: a determinism, concurrency & privacy-custody analyzer for
// the pmiot tree.
//
// The repo's bit-reproducibility contract (results identical at any
// PMIOT_THREADS, across runs, across machines) rests on a handful of coding
// invariants that no compiler flag enforces: no ambient randomness, no wall
// clocks in library code, shard-derived RNG seeds inside parallel regions,
// no iteration over hash containers into ordered output. The paper's §III
// custody contract adds another: occupancy-revealing signals may only leave
// the process through sanctioned defense/aggregation paths. This analyzer
// checks both mechanically over `src/ bench/ tests/ tools/` and runs as a
// ctest, so a violation fails the build instead of silently de-reproducing
// a figure — or silently leaking a memoir.
//
// Since PR 9 the analyzer works on a real token scan (see token.h) plus a
// project-wide symbol index (see index.h): function definitions, a
// name-based call graph, and the include graph, built in one pass over the
// tree. Rule keywords inside strings, comments, or `#if 0` regions no
// longer fire, and three rule families reason across translation units.
//
// Per-file rules (scope in parentheses; `--list-rules` prints the table):
//   raw-rand        (all)   rand()/srand()/std::random_device — use a
//                           seeded pmiot::Rng.
//   wall-clock      (all)   system_clock / time(nullptr) / gettimeofday /
//                           clock(): results must not depend on wall time.
//                           Carve-out: src/obs/ may read clocks — obs timer
//                           spans are excluded from the determinism
//                           contract by design.
//   src-timing      (src)   steady_clock & friends in library code — timing
//                           belongs in bench/, not in results. Same
//                           src/obs/ carve-out as wall-clock.
//   par-rng-seed    (all)   RNG constructed inside a parallel_for lambda
//                           must be seeded from shard_seed (or an explicit
//                           per-shard seed value mentioning "seed"); since
//                           PR 9 a seed fetched through one level of helper
//                           call (e.g. `Rng rng(shard_for(i))` where the
//                           helper's body mentions a seed) also counts.
//   nested-par      (all)   parallel_for inside a parallel_for lambda: the
//                           inner call runs inline, which is almost never
//                           what the author intended for throughput.
//   unordered-iter  (all)   iteration over an unordered_map/unordered_set:
//                           the traversal order is nondeterministic, so any
//                           output or accumulation it feeds must be ordered
//                           first (or the site justified with an allow).
//   atomic-float    (all)   std::atomic<float/double>: atomic FP reduction
//                           commits to an addition order that depends on
//                           thread scheduling.
//   include-hygiene (headers) a header naming a std:: symbol must include
//                           the standard header that provides it, not lean
//                           on a transitive include.
//   simd-guard      (all)   raw intrinsics / intrinsics headers / vector
//                           pragmas outside a PMIOT_SIMD-guarded region.
//
// Project rules (need the cross-TU index; resolved over the whole run):
//   privacy-flow    (src)   a function that handles sensitive data (an
//                           annotated type/field/name, or the occupancy /
//                           packet-payload built-ins) and reaches a write
//                           sink (ofstream/fopen/fwrite/stdout...) directly
//                           or through the call graph, outside the
//                           sanctioned custody modules src/defense/ and
//                           src/campaign/. Calls *into* sanctioned modules
//                           are custody handoffs and do not propagate.
//                           Inside a sanctioned module, a sensitive
//                           function that writes directly must carry
//                           `pmiot: egress` so the audit set stays explicit.
//   check-coverage  (src)   a parser entry point (read_*/load_*/parse_*
//                           with parameters) must PMIOT_CHECK-validate its
//                           input in its own body or in a directly-called
//                           helper before indexing decoded buffers.
//   no-alloc        (all)   a function annotated `pmiot: no-alloc` must not
//                           reach a definite heap allocation (new,
//                           make_unique/make_shared, the malloc family)
//                           directly or through project callees. Container
//                           growth on warm arenas is *not* flagged here —
//                           that half of the contract stays with the
//                           runtime counting-operator-new self-checks.
//   bad-annotation  (meta)  a `pmiot:` marker that names an unknown
//                           annotation, attaches to no declaration or
//                           function, or marks egress outside a sanctioned
//                           module.
//
// Suppressions: a `pmiot-lint: allow(...)` comment naming one or more rules
// on the offending line, or alone on the line above it. Every grant must
// match a violation — a stale suppression is itself reported
// (`stale-suppression`), so suppressions cannot outlive the code they
// excused.
//
// Annotation grammar (same placement rules as `allow()`: trailing on the
// target line, or on a comment-only line directly above the target):
//
//   `pmiot: sensitive`   on a struct/class/enum or a field declaration.
//     Marks the declared name as a taint source for privacy-flow. The name
//     is project-global: any function whose tokens mention it is treated
//     as handling sensitive data. Built-ins that need no marker: names
//     containing "occupancy", and the exact identifiers `payload` /
//     `payloads` (packet contents).
//   `pmiot: no-alloc`    on a function definition (the marker may sit up
//     to two lines above the name token, so multi-line signatures work).
//     Arms the no-alloc rule for that function's whole reachable set.
//   `pmiot: egress`      on a function definition inside src/defense/ or
//     src/campaign/. Declares a sanctioned custody boundary: the function
//     may write sensitive data out, and taint does not propagate through
//     it to callers. Outside sanctioned modules the marker itself is a
//     bad-annotation finding.
//
//   A justification after a dash is encouraged, e.g. `// pmiot: egress`
//   followed by " — completed cells stream to the local checkpoint".
//   Prose that merely mentions the grammar does not register: a marker
//   only counts when the annotation word ends the comment or is followed
//   by a dash/paren justification delimiter.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace pmiot::lint {

/// One finding, anchored to a 1-based line of `file`.
struct Diagnostic {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;

  bool operator==(const Diagnostic&) const = default;
};

/// Formats as `file:line: error: [rule] message` (the common compiler
/// diagnostic shape, so editors and CI annotations pick it up).
std::string to_string(const Diagnostic& diagnostic);

/// Rule names `allow(...)` accepts, in documentation order.
const std::vector<std::string>& rule_names();

/// One line of the `--list-rules` table: "name  description".
std::string describe_rule(const std::string& rule);

/// The cross-TU analyzer. Feed every translation unit with add_file, then
/// call run() once: per-file rules fire per unit, project rules resolve
/// over the union of symbol indexes. Never touches the filesystem —
/// callers feed `content` — so tests lint embedded fixture strings.
class Analyzer {
 public:
  /// `path` is the repo-relative path ("src/..."), used for diagnostics
  /// and for scoping rules (src-timing and the privacy/check rules look at
  /// the prefix; include-hygiene only fires on *.h).
  void add_file(const std::string& path, const std::string& content);

  /// Runs all rules. Diagnostics come back sorted by (file, line, rule).
  std::vector<Diagnostic> run();

 private:
  std::vector<std::pair<std::string, std::string>> files_;  // (path, content)
};

/// Convenience wrapper: lints one translation unit as a single-file
/// project (project rules still run, with the call graph limited to this
/// unit). Diagnostics come back in line order.
std::vector<Diagnostic> lint_source(const std::string& path,
                                    const std::string& content);

}  // namespace pmiot::lint
