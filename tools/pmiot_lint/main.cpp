// pmiot_lint CLI: lints files or directory trees and exits nonzero on any
// non-baselined finding. Registered as the `pmiot_lint.tree` ctest over
// src/ bench/ tests/ tools/, so determinism and privacy-custody violations
// fail the build.
//
//   pmiot_lint [--root DIR] [--list-rules]
//              [--format text|json|sarif] [--output FILE]
//              [--baseline FILE] [--only-listed FILE] [paths...]
//
// Paths are files or directories, relative to --root (default: the current
// directory). With no paths, lints src bench tests tools.
//
// The whole tree is always scanned and indexed (the privacy-flow,
// check-coverage, and no-alloc rules need the cross-TU call graph);
// `--only-listed FILE` then restricts *reporting* to the files named in
// FILE (one repo-relative path per line) — the diff-aware CI mode driven
// by scripts/lint-diff.sh. `--baseline FILE` waives findings whose
// `rule file` pair appears in FILE (see report.h for the format); waived
// findings are printed as `baseline:` lines and do not affect the exit
// code.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "pmiot_lint/lint.h"
#include "pmiot_lint/report.h"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cpp" || ext == ".cc" || ext == ".hpp";
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// One repo-relative path per line; blank lines and `#` comments ignored.
std::set<std::string> read_path_list(const std::string& text) {
  std::set<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t lo = line.find_first_not_of(" \t\r");
    if (lo == std::string::npos || line[lo] == '#') continue;
    const std::size_t hi = line.find_last_not_of(" \t\r");
    out.insert(line.substr(lo, hi - lo + 1));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::string format = "text";
  std::string output_path;
  std::string baseline_path;
  std::string only_listed_path;
  std::vector<std::string> targets;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--format" && i + 1 < argc) {
      format = argv[++i];
      if (format != "text" && format != "json" && format != "sarif") {
        std::cerr << "pmiot_lint: unknown --format " << format
                  << " (expected text, json, or sarif)\n";
        return 2;
      }
    } else if (arg == "--output" && i + 1 < argc) {
      output_path = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--only-listed" && i + 1 < argc) {
      only_listed_path = argv[++i];
    } else if (arg == "--list-rules") {
      for (const auto& rule : pmiot::lint::rule_names()) {
        std::cout << rule << "\n    " << pmiot::lint::describe_rule(rule)
                  << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: pmiot_lint [--root DIR] [--list-rules] "
                   "[--format text|json|sarif] [--output FILE] "
                   "[--baseline FILE] [--only-listed FILE] [paths...]\n";
      return 0;
    } else {
      targets.push_back(arg);
    }
  }
  if (targets.empty()) targets = {"src", "bench", "tests", "tools"};

  std::set<std::string> baseline;
  if (!baseline_path.empty()) {
    std::error_code ec;
    if (!fs::is_regular_file(baseline_path, ec)) {
      std::cerr << "pmiot_lint: cannot read baseline " << baseline_path
                << "\n";
      return 2;
    }
    baseline = pmiot::lint::parse_baseline(read_file(baseline_path));
  }
  std::set<std::string> only_listed;
  bool restrict_reporting = false;
  if (!only_listed_path.empty()) {
    std::error_code ec;
    if (!fs::is_regular_file(only_listed_path, ec)) {
      std::cerr << "pmiot_lint: cannot read file list " << only_listed_path
                << "\n";
      return 2;
    }
    only_listed = read_path_list(read_file(only_listed_path));
    restrict_reporting = true;
  }

  // Expand directories; sort for output (and exit code) determinism.
  std::vector<fs::path> files;
  for (const auto& target : targets) {
    const fs::path full = root / target;
    std::error_code ec;
    if (fs::is_directory(full, ec)) {
      for (fs::recursive_directory_iterator it(full, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (it->is_regular_file() && lintable(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(full, ec) && lintable(full)) {
      files.push_back(full);
    } else {
      std::cerr << "pmiot_lint: cannot read " << full << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  // Feed the whole tree into one Analyzer run: project rules need the
  // cross-TU index even when reporting is restricted to a subset.
  pmiot::lint::Analyzer analyzer;
  for (const auto& file : files) {
    const std::string label = fs::relative(file, root).generic_string();
    analyzer.add_file(label, read_file(file));
  }
  const std::vector<pmiot::lint::Diagnostic> all = analyzer.run();

  std::vector<pmiot::lint::Diagnostic> reported;
  std::vector<pmiot::lint::Diagnostic> waived;
  for (const auto& diagnostic : all) {
    if (restrict_reporting && only_listed.count(diagnostic.file) == 0) {
      continue;
    }
    if (baseline.count(pmiot::lint::baseline_key(diagnostic)) != 0) {
      waived.push_back(diagnostic);
    } else {
      reported.push_back(diagnostic);
    }
  }

  if (format == "text") {
    std::ostream* out = &std::cout;
    std::ofstream file_out;
    if (!output_path.empty()) {
      file_out.open(output_path);
      if (!file_out) {
        std::cerr << "pmiot_lint: cannot write " << output_path << "\n";
        return 2;
      }
      out = &file_out;
    }
    for (const auto& diagnostic : reported) {
      *out << pmiot::lint::to_string(diagnostic) << "\n";
    }
    for (const auto& diagnostic : waived) {
      *out << "baseline: " << pmiot::lint::to_string(diagnostic) << "\n";
    }
  } else {
    const std::string report = format == "json"
                                   ? pmiot::lint::to_json(reported)
                                   : pmiot::lint::to_sarif(reported);
    if (output_path.empty()) {
      std::cout << report;
    } else {
      std::ofstream file_out(output_path);
      if (!file_out) {
        std::cerr << "pmiot_lint: cannot write " << output_path << "\n";
        return 2;
      }
      file_out << report;
      // Keep the human-readable findings on stdout so CI logs stay useful
      // even when the artifact goes to a file.
      for (const auto& diagnostic : reported) {
        std::cout << pmiot::lint::to_string(diagnostic) << "\n";
      }
    }
  }
  std::cout << "pmiot_lint: " << files.size() << " files, "
            << reported.size()
            << (reported.size() == 1 ? " finding" : " findings");
  if (!waived.empty()) std::cout << " (+" << waived.size() << " baselined)";
  if (restrict_reporting) {
    std::cout << " [reporting restricted to " << only_listed.size()
              << " listed files]";
  }
  std::cout << "\n";
  return reported.empty() ? 0 : 1;
}
