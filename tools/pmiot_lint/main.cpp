// pmiot_lint CLI: lints files or directory trees and exits nonzero on any
// finding. Registered as the `pmiot_lint.tree` ctest over src/ bench/
// tests/ tools/, so determinism violations fail the build.
//
//   pmiot_lint [--root DIR] [--list-rules] [paths...]
//
// Paths are files or directories, relative to --root (default: the current
// directory). With no paths, lints src bench tests tools.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "pmiot_lint/lint.h"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cpp" || ext == ".cc" || ext == ".hpp";
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::vector<std::string> targets;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--list-rules") {
      for (const auto& rule : pmiot::lint::rule_names()) {
        std::cout << rule << "\n    " << pmiot::lint::describe_rule(rule)
                  << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: pmiot_lint [--root DIR] [--list-rules] "
                   "[paths...]\n";
      return 0;
    } else {
      targets.push_back(arg);
    }
  }
  if (targets.empty()) targets = {"src", "bench", "tests", "tools"};

  // Expand directories; sort for output (and exit code) determinism.
  std::vector<fs::path> files;
  for (const auto& target : targets) {
    const fs::path full = root / target;
    std::error_code ec;
    if (fs::is_directory(full, ec)) {
      for (fs::recursive_directory_iterator it(full, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (it->is_regular_file() && lintable(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(full, ec) && lintable(full)) {
      files.push_back(full);
    } else {
      std::cerr << "pmiot_lint: cannot read " << full << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::size_t total = 0;
  for (const auto& file : files) {
    const std::string label =
        fs::relative(file, root).generic_string();
    const auto diagnostics =
        pmiot::lint::lint_source(label, read_file(file));
    for (const auto& diagnostic : diagnostics) {
      std::cout << pmiot::lint::to_string(diagnostic) << "\n";
    }
    total += diagnostics.size();
  }
  std::cout << "pmiot_lint: " << files.size() << " files, " << total
            << (total == 1 ? " finding\n" : " findings\n");
  return total == 0 ? 0 : 1;
}
