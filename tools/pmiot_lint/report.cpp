#include "pmiot_lint/report.h"

#include <cstdio>

namespace pmiot::lint {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string to_json(const std::vector<Diagnostic>& diags) {
  std::string out = "{\n  \"tool\": \"pmiot_lint\",\n  \"findings\": [";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    out += (i == 0) ? "\n" : ",\n";
    out += "    {\"file\": \"" + json_escape(d.file) +
           "\", \"line\": " + std::to_string(d.line) + ", \"rule\": \"" +
           json_escape(d.rule) + "\", \"message\": \"" +
           json_escape(d.message) + "\"}";
  }
  out += diags.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string to_sarif(const std::vector<Diagnostic>& diags) {
  std::string out =
      "{\n"
      "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [{\n"
      "    \"tool\": {\"driver\": {\"name\": \"pmiot_lint\", \"rules\": [";
  const std::vector<std::string> rules = rule_names();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out += (i == 0) ? "\n" : ",\n";
    out += "      {\"id\": \"" + json_escape(rules[i]) +
           "\", \"shortDescription\": {\"text\": \"" +
           json_escape(describe_rule(rules[i])) + "\"}}";
  }
  out += rules.empty() ? "]}},\n" : "\n    ]}},\n";
  out += "    \"results\": [";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    out += (i == 0) ? "\n" : ",\n";
    out += "      {\"ruleId\": \"" + json_escape(d.rule) +
           "\", \"level\": \"error\", \"message\": {\"text\": \"" +
           json_escape(d.message) +
           "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \"" +
           json_escape(d.file) + "\"}, \"region\": {\"startLine\": " +
           std::to_string(d.line) + "}}}]}";
  }
  out += diags.empty() ? "]\n" : "\n    ]\n";
  out += "  }]\n}\n";
  return out;
}

std::string baseline_key(const Diagnostic& d) { return d.rule + " " + d.file; }

std::set<std::string> parse_baseline(const std::string& text) {
  std::set<std::string> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(pos, end - pos);
    const std::size_t lo = line.find_first_not_of(" \t\r");
    if (lo != std::string::npos && line[lo] != '#') {
      const std::size_t hi = line.find_last_not_of(" \t\r");
      out.insert(line.substr(lo, hi - lo + 1));
    }
    if (end == text.size()) break;
    pos = end + 1;
  }
  return out;
}

}  // namespace pmiot::lint
