// pmiot-lint report writers: machine-readable JSON and SARIF 2.1.0
// renderings of a diagnostic set, plus the text baseline format the CI
// diff mode consumes.
//
// Baseline format: one `rule<space>file` pair per line, `#` comments and
// blank lines ignored. A baseline entry waives *every* finding of that
// rule in that file — coarse on purpose, so line churn does not
// invalidate it; new rules or newly-affected files still fail.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "pmiot_lint/lint.h"

namespace pmiot::lint {

/// Stable JSON rendering: {"tool":"pmiot_lint","findings":[...]}.
std::string to_json(const std::vector<Diagnostic>& diags);

/// SARIF 2.1.0 rendering (one run, one result per diagnostic) for code
/// scanning UIs.
std::string to_sarif(const std::vector<Diagnostic>& diags);

/// The baseline key of a diagnostic: "rule file".
std::string baseline_key(const Diagnostic& d);

/// Parses baseline text into its key set.
std::set<std::string> parse_baseline(const std::string& text);

}  // namespace pmiot::lint
