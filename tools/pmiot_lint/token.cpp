#include "pmiot_lint/token.h"

namespace pmiot::lint {
namespace {

bool is_ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool is_ident_char(char c) { return is_ident_start(c) || (c >= '0' && c <= '9'); }

bool is_digit(char c) { return c >= '0' && c <= '9'; }

bool is_hspace(char c) { return c == ' ' || c == '\t' || c == '\r'; }

/// True when the `"` at index `i` closes a raw-string prefix (R, LR, uR,
/// UR, u8R as a complete token).
bool is_raw_string_open(const std::string& text, std::size_t i) {
  if (i == 0 || text[i - 1] != 'R') return false;
  if (i < 2 || !is_ident_char(text[i - 2])) return true;  // bare R"
  const char p = text[i - 2];
  if ((p == 'L' || p == 'u' || p == 'U') &&
      (i < 3 || !is_ident_char(text[i - 3]))) {
    return true;  // LR" uR" UR"
  }
  if (p == '8' && i >= 3 && text[i - 3] == 'u' &&
      (i < 4 || !is_ident_char(text[i - 4]))) {
    return true;  // u8R"
  }
  return false;  // identifier that merely ends in R
}

/// Pass 1: blank comment bodies and literal contents in place, collect
/// comment text per line. Leaves quotes and the comment-introducing
/// punctuation visible so offsets stay meaningful.
void blank_comments_and_literals(ScanResult& out) {
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  std::string& code = out.code;
  // Lookbacks (block-comment close, comment line continuation, digit
  // separators, raw-string delimiters) must read the *original* text:
  // `code` is blanked in place, so by the time we inspect `code[i - 1]`
  // the interesting character may already be a space.
  const std::string text = code;
  out.comments.emplace_back();
  State state = State::kCode;
  std::string raw_close;      // ")delim\"" for the active raw string
  std::size_t block_open = 0;  // index of '/' that opened the block comment

  for (std::size_t i = 0; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '\n') {
      if (state == State::kLine) {
        // Phase-2 splicing runs before comment recognition, so a line
        // comment whose last character is a backslash swallows the next
        // physical line.
        std::size_t b = i;
        while (b > 0 && text[b - 1] == '\r') --b;
        if (!(b > 0 && text[b - 1] == '\\')) state = State::kCode;
      }
      out.comments.emplace_back();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && i + 1 < code.size() && code[i + 1] == '/') {
          state = State::kLine;
          code[i] = ' ';
          code[i + 1] = ' ';
          ++i;
        } else if (c == '/' && i + 1 < code.size() && code[i + 1] == '*') {
          state = State::kBlock;
          block_open = i;
          code[i] = ' ';
          code[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = is_raw_string_open(text, i) ? State::kRaw : State::kString;
          if (state == State::kRaw) {
            // (assign-via-clear sidesteps a GCC 12 -Wrestrict false
            // positive on string literal assignment)
            raw_close.clear();
            raw_close.push_back(')');
            std::size_t j = i + 1;
            while (j < code.size() && code[j] != '(' && code[j] != '\n') {
              raw_close += code[j];
              code[j] = ' ';
              ++j;
            }
            raw_close += '"';
            if (j < code.size() && code[j] == '(') code[j] = ' ';
            i = j;
          }
        } else if (c == '\'' && !(i > 0 && is_ident_char(text[i - 1]))) {
          // A quote glued to an identifier/number character is a C++14
          // digit separator (1'000'000), not a char literal.
          state = State::kChar;
        }
        break;
      case State::kLine:
        out.comments.back() += c;
        code[i] = ' ';
        break;
      case State::kBlock:
        if (c == '/' && text[i - 1] == '*' && i >= block_open + 3) {
          state = State::kCode;
        } else {
          out.comments.back() += c;
        }
        code[i] = ' ';
        break;
      case State::kString:
        if (c == '\\') {
          code[i] = ' ';
          if (i + 1 < code.size() && code[i + 1] != '\n') {
            code[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
        } else {
          code[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          code[i] = ' ';
          if (i + 1 < code.size() && code[i + 1] != '\n') {
            code[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          state = State::kCode;
        } else {
          code[i] = ' ';
        }
        break;
      case State::kRaw:
        if (text.compare(i, raw_close.size(), raw_close) == 0) {
          // Blank the ")delim" part but keep the closing quote visible so
          // the tokenizer sees a balanced string literal.
          for (std::size_t j = 0; j + 1 < raw_close.size(); ++j) {
            code[i + j] = ' ';
          }
          i += raw_close.size() - 1;
          state = State::kCode;
        } else {
          code[i] = ' ';
        }
        break;
    }
  }
}

/// Pass 2: fold preprocessor line continuations into logical directive
/// lines, track conditional nesting, and blank everything inside
/// `#if 0` / `#if false` regions (including their comments, so grants and
/// annotations there do not apply). Conditional directives themselves stay
/// visible — the simd-guard rule replays them.
void blank_disabled_regions(ScanResult& out) {
  // 0 = unknown condition, 1 = known-true, 2 = known-false.
  struct Frame {
    int kind = 0;
    bool in_else = false;
  };
  std::vector<Frame> stack;
  const auto disabled = [&stack] {
    for (const Frame& f : stack) {
      if ((f.kind == 2 && !f.in_else) || (f.kind == 1 && f.in_else)) {
        return true;
      }
    }
    return false;
  };
  const auto classify = [](const std::string& cond) {
    if (cond == "0" || cond == "false") return 2;
    if (cond == "1" || cond == "true") return 1;
    return 0;
  };

  std::string& code = out.code;
  const std::size_t total_lines = out.comments.size();
  out.directive_lines.assign(total_lines, false);

  std::size_t pos = 0;
  std::size_t line = 1;
  while (pos < code.size()) {
    std::size_t end = code.find('\n', pos);
    if (end == std::string::npos) end = code.size();

    std::size_t first = pos;
    while (first < end && is_hspace(code[first])) ++first;
    const bool is_directive = first < end && code[first] == '#';

    std::size_t logical_end = end;
    std::size_t lines_spanned = 1;
    if (is_directive) {
      // Fold backslash continuations into one logical directive line.
      while (logical_end < code.size()) {
        std::size_t last = logical_end;
        while (last > pos && is_hspace(code[last - 1])) --last;
        if (!(last > pos && code[last - 1] == '\\')) break;
        std::size_t next_end = code.find('\n', logical_end + 1);
        if (next_end == std::string::npos) next_end = code.size();
        logical_end = next_end;
        ++lines_spanned;
      }
    }

    if (is_directive) {
      std::size_t p = first + 1;
      while (p < logical_end && is_hspace(code[p])) ++p;
      std::size_t q = p;
      while (q < logical_end && is_ident_char(code[q])) ++q;
      const std::string name = code.substr(p, q - p);
      const bool was_disabled = disabled();
      if (name == "if") {
        std::size_t lo = q;
        while (lo < logical_end && is_hspace(code[lo])) ++lo;
        std::size_t hi = logical_end;
        while (hi > lo &&
               (is_hspace(code[hi - 1]) || code[hi - 1] == '\\')) {
          --hi;
        }
        stack.push_back({classify(code.substr(lo, hi - lo)), false});
      } else if (name == "ifdef" || name == "ifndef") {
        stack.push_back({0, false});
      } else if (name == "elif") {
        if (!stack.empty()) {
          if (stack.back().kind == 1) {
            stack.back().in_else = true;  // a taken #if 1 kills later arms
          } else {
            std::size_t lo = q;
            while (lo < logical_end && is_hspace(code[lo])) ++lo;
            std::size_t hi = logical_end;
            while (hi > lo && is_hspace(code[hi - 1])) --hi;
            stack.back().kind = classify(code.substr(lo, hi - lo));
            stack.back().in_else = false;
          }
        }
      } else if (name == "else") {
        if (!stack.empty()) stack.back().in_else = true;
      } else if (name == "endif") {
        if (!stack.empty()) stack.pop_back();
      } else if (was_disabled) {
        // Non-conditional directive (#define, #include, #pragma, ...)
        // inside a disabled region: invisible.
        for (std::size_t j = pos; j < logical_end; ++j) {
          if (code[j] != '\n') code[j] = ' ';
        }
        for (std::size_t j = 0; j < lines_spanned; ++j) {
          if (line - 1 + j < out.comments.size()) {
            out.comments[line - 1 + j].clear();
          }
        }
        line += lines_spanned;
        pos = logical_end + 1;
        continue;
      }
      for (std::size_t j = 0; j < lines_spanned; ++j) {
        if (line - 1 + j < out.directive_lines.size()) {
          out.directive_lines[line - 1 + j] = true;
        }
      }
      line += lines_spanned;
      pos = logical_end + 1;
      continue;
    }

    if (disabled()) {
      for (std::size_t j = pos; j < end; ++j) code[j] = ' ';
      if (line - 1 < out.comments.size()) out.comments[line - 1].clear();
    }
    ++line;
    pos = end + 1;
  }
}

/// Pass 3: tokenize the blanked code. Directive lines contribute no
/// tokens (rules that need them read `code` directly).
void tokenize(ScanResult& out) {
  const std::string& code = out.code;
  const std::size_t total_lines = out.comments.size();
  out.code_lines.assign(total_lines, false);
  for (std::size_t l = 0; l < out.directive_lines.size(); ++l) {
    if (out.directive_lines[l]) out.code_lines[l] = true;
  }

  std::size_t pos = 0;
  std::size_t line = 1;
  const auto mark = [&out](std::size_t l) {
    if (l >= 1 && l <= out.code_lines.size()) out.code_lines[l - 1] = true;
  };
  while (pos < code.size()) {
    const char c = code[pos];
    if (c == '\n') {
      ++line;
      ++pos;
      continue;
    }
    if (line <= out.directive_lines.size() && out.directive_lines[line - 1]) {
      std::size_t end = code.find('\n', pos);
      pos = (end == std::string::npos) ? code.size() : end;
      continue;
    }
    if (is_hspace(c)) {
      ++pos;
      continue;
    }
    Token tok;
    tok.line = line;
    tok.offset = pos;
    if (is_ident_start(c)) {
      tok.kind = TokenKind::kIdentifier;
      std::size_t j = pos;
      while (j < code.size() && is_ident_char(code[j])) ++j;
      tok.text = code.substr(pos, j - pos);
      pos = j;
    } else if (is_digit(c) ||
               (c == '.' && pos + 1 < code.size() && is_digit(code[pos + 1]))) {
      tok.kind = TokenKind::kNumber;
      std::size_t j = pos;
      while (j < code.size()) {
        const char d = code[j];
        if (is_ident_char(d) || d == '.') {
          ++j;
        } else if (d == '\'' && j + 1 < code.size() &&
                   is_ident_char(code[j + 1])) {
          ++j;  // digit separator
        } else if ((d == '+' || d == '-') && j > pos &&
                   (code[j - 1] == 'e' || code[j - 1] == 'E' ||
                    code[j - 1] == 'p' || code[j - 1] == 'P')) {
          ++j;  // exponent sign
        } else {
          break;
        }
      }
      tok.text = code.substr(pos, j - pos);
      pos = j;
    } else if (c == '"') {
      tok.kind = TokenKind::kString;
      std::size_t close = code.find('"', pos + 1);
      if (close == std::string::npos) close = code.size() - 1;
      for (std::size_t j = pos; j < close; ++j) {
        if (code[j] == '\n') ++line;
      }
      pos = close + 1;
    } else if (c == '\'') {
      tok.kind = TokenKind::kChar;
      std::size_t close = code.find('\'', pos + 1);
      if (close == std::string::npos) close = code.size() - 1;
      for (std::size_t j = pos; j < close; ++j) {
        if (code[j] == '\n') ++line;
      }
      pos = close + 1;
    } else {
      tok.kind = TokenKind::kPunct;
      tok.text.assign(1, c);
      ++pos;
    }
    mark(tok.line);
    out.tokens.push_back(std::move(tok));
  }
}

}  // namespace

ScanResult scan_text(const std::string& text) {
  ScanResult out;
  out.code = text;
  blank_comments_and_literals(out);
  blank_disabled_regions(out);
  tokenize(out);
  return out;
}

}  // namespace pmiot::lint
