// pmiot-lint token scanner: the layer that turns a C++ translation unit
// into (a) a blanked text where comments, string/char literals, and
// preprocessor-disabled regions cannot masquerade as code, and (b) a token
// stream the symbol indexer and the semantic rules walk.
//
// The scanner is deliberately not a full lexer — it exists so lint rules
// never fire on rule keywords inside strings or comments (the regex
// scanner's false-positive class) and so the indexer can find function
// definitions and call sites by token shape. Handled corner cases, each
// pinned by a fixture test in tests/lint_test.cpp:
//
//   * line and block comments, including block comments spanning lines and
//     the pathological "/*/" non-terminator;
//   * string literals with escaped quotes, and raw string literals with
//     their full prefix set (R"", LR"", uR"", UR"", u8R"");
//   * char literals vs C++14 digit separators (1'000'000 — the sequence
//     that made the old scanner treat trailing comment text as code);
//   * backslash line continuations inside line comments and preprocessor
//     directives (phase-2 splicing happens before comment recognition, so
//     a comment ending in `\` swallows the next physical line);
//   * `#if 0` / `#if false` regions: their contents are invisible to every
//     rule, exactly like they are invisible to the compiler.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pmiot::lint {

enum class TokenKind : std::uint8_t {
  kIdentifier,
  kNumber,
  kString,  ///< blanked contents; text is empty
  kChar,    ///< blanked contents; text is empty
  kPunct,   ///< one punctuation character in `text`
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;        ///< spelling (identifiers/numbers/punct)
  std::size_t line = 0;    ///< 1-based line of the token's first character
  std::size_t offset = 0;  ///< byte offset into the original source
};

/// Everything the scanner extracts from one translation unit.
struct ScanResult {
  /// The source with comment bodies, literal contents, and
  /// preprocessor-disabled regions blanked to spaces. Same length as the
  /// input; newlines preserved, so offsets and line numbers survive.
  /// Preprocessor directive lines stay visible (the simd-guard and
  /// include-hygiene rules read them).
  std::string code;

  /// Comment text per line (comments[i] belongs to line i+1). Comments
  /// inside disabled preprocessor regions are dropped, so `allow(...)`
  /// grants and `pmiot:` annotations there do not apply.
  std::vector<std::string> comments;

  /// Code tokens in source order. Preprocessor directive lines and
  /// disabled regions contribute no tokens.
  std::vector<Token> tokens;

  /// True when 1-based `line` carries code (a token or a preprocessor
  /// directive) — the anchor rule for comment-line directives.
  bool line_has_code(std::size_t line) const {
    return line >= 1 && line <= code_lines.size() && code_lines[line - 1];
  }

  std::vector<bool> code_lines;       ///< per line: carries code
  std::vector<bool> directive_lines;  ///< per line: part of a # directive
};

/// Scans one translation unit. Never touches the filesystem.
ScanResult scan_text(const std::string& text);

}  // namespace pmiot::lint
